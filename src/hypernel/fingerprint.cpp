#include "hypernel/fingerprint.h"

#include <algorithm>
#include <cstring>

#include "kernel/vfs.h"

namespace hn::hypernel {

u64 FunctionalFingerprint::functional_hash() const {
  u64 h = kFnvOffset;
  h = fnv_fold(h, file_hash);
  h = fnv_fold(h, inode_count);
  h = fnv_fold(h, dcache_size);
  h = fnv_fold(h, live_tasks);
  h = fnv_fold(h, loaded_modules);
  h = fnv_fold(h, current_uid);
  h = fnv_fold(h, op_digest);
  return h;
}

std::string FunctionalFingerprint::diff(const FunctionalFingerprint& o) const {
  std::string out;
  auto field = [&](const char* name, u64 mine, u64 theirs) {
    if (mine == theirs) return;
    out += std::string(out.empty() ? "" : ", ") + name + " " +
           std::to_string(mine) + " vs " + std::to_string(theirs);
  };
  field("file_hash", file_hash, o.file_hash);
  field("inode_count", inode_count, o.inode_count);
  field("dcache_size", dcache_size, o.dcache_size);
  field("live_tasks", live_tasks, o.live_tasks);
  field("loaded_modules", loaded_modules, o.loaded_modules);
  field("current_uid", current_uid, o.current_uid);
  field("op_digest", op_digest, o.op_digest);
  return out;
}

FunctionalFingerprint take_fingerprint(System& sys) {
  FunctionalFingerprint fp;
  fp.cycles = sys.machine().account().cycles();

  kernel::Kernel& k = sys.kernel();
  kernel::Vfs& vfs = k.vfs();

  // Filesystem walk: identity fields for every inode, plus the leading
  // bytes of regular-file data.  Inode numbers are never reused, so
  // [1, ino_bound) enumerates every inode that can still exist.
  u64 h = kFnvOffset;
  for (u64 ino = 1; ino < vfs.ino_bound(); ++ino) {
    const kernel::Inode* node = vfs.inode(ino);
    if (node == nullptr) continue;
    h = fnv_fold(h, node->ino);
    h = fnv_fold(h, node->is_dir ? 1 : 0);
    h = fnv_fold(h, node->size);
    h = fnv_fold(h, node->nlink);
    if (!node->is_dir && node->size > 0) {
      u64 row[8] = {};
      const u64 len = std::min<u64>(word_align_down(node->size), sizeof(row));
      if (len > 0 && vfs.read_file(ino, 0, row, len).ok()) {
        for (u64 w = 0; w < len / kWordSize; ++w) h = fnv_fold(h, row[w]);
      }
    }
  }
  fp.file_hash = h;
  fp.inode_count = vfs.inode_count();
  fp.dcache_size = vfs.dcache_size();
  fp.live_tasks = k.procs().live_tasks();
  fp.loaded_modules = k.modules().loaded_count();
  if (Result<u64> uid = k.procs().cred_uid(k.procs().current()); uid.ok()) {
    fp.current_uid = uid.value();
  }
  return fp;
}

}  // namespace hn::hypernel
