#include "hypernel/system.h"

#include "mbm/bitmap_math.h"

namespace hn::hypernel {

System::~System() = default;

Result<std::unique_ptr<System>> System::create(const SystemConfig& config) {
  std::unique_ptr<System> sys(new System(config));
  if (Status s = sys->build(); !s.ok()) return s;
  return sys;
}

Status System::build() {
  machine_ = std::make_unique<sim::Machine>(config_.machine);
  if (config_.metrics) machine_->obs().set_enabled(true);

  // The MBM is standard under Hypernel; a Native system may also carry it
  // (without Hypersec) to reproduce the bare external-monitor baseline and
  // its ATRA weakness (§2, [15]).
  const bool want_mbm =
      config_.enable_mbm && config_.mode != Mode::kKvmGuest;

  kernel::KernelConfig kcfg = config_.kernel;
  if (kcfg.linear_limit == 0) {
    // A pure native kernel keeps all of DRAM; KVM reserves the top for the
    // host (stage-2 tables); Hypernel — and any system carrying the MBM —
    // reserves it as the secure space (§5.2).
    kcfg.linear_limit = (config_.mode == Mode::kNative && !want_mbm)
                            ? machine_->phys().size()
                            : machine_->secure_base();
  }
  kernel_ = std::make_unique<kernel::Kernel>(*machine_, kcfg);

  if (config_.mode == Mode::kKvmGuest) {
    kvm_ = std::make_unique<kvm::KvmHypervisor>(*machine_, *kernel_,
                                                config_.kvm);
    if (Status s = kvm_->init(); !s.ok()) return s;
  }

  if (Status s = kernel_->boot(); !s.ok()) return s;

  if (want_mbm) {
    // Secure-space layout: [bitmap][event ring][Hypersec stack/data].
    mbm::MbmConfig mcfg;
    mcfg.watch_base = 0;
    mcfg.watch_size = machine_->secure_base();
    mcfg.bitmap_base = machine_->secure_base();
    mcfg.ring_base = page_align_up(mcfg.bitmap_base +
                                   mbm::bitmap_bytes_for(mcfg.watch_size));
    mcfg.ring_entries = config_.mbm_ring_entries;
    mcfg.fifo_depth = config_.mbm_fifo_depth;
    mcfg.bitmap_cache_entries = config_.mbm_bitmap_cache_entries;
    mcfg.bitmap_cache_enabled = config_.mbm_bitmap_cache_enabled;
    const u64 ring_end =
        mcfg.ring_base + mcfg.ring_entries * mbm::kRingEntryBytes;
    if (ring_end > machine_->phys().size()) {
      return Status::Invalid("secure space too small for MBM structures");
    }
    mbm_ = std::make_unique<mbm::MemoryBusMonitor>(*machine_, mcfg);
  }

  if (config_.mode == Mode::kHypernel) {
    hypersec_ = std::make_unique<hypersec::Hypersec>(
        *machine_, *kernel_, mbm_.get(), config_.hypersec);
    if (Status s = hypersec_->init(); !s.ok()) return s;
  }
  return Status::Ok();
}

Status System::register_security_app(hypersec::SecurityApp& app) {
  if (hypersec_ == nullptr) {
    return Status::Precondition(
        "security applications require the Hypernel configuration");
  }
  hypersec_->register_app(app);
  return Status::Ok();
}

System::Snapshot System::snapshot() const {
  Snapshot s;
  s.cycles = machine_->account().cycles();
  s.counters = machine_->account().counters();
  return s;
}

double System::us_since(const Snapshot& s) const {
  return machine_->timing().cycles_to_us(machine_->account().cycles() -
                                         s.cycles);
}

Cycles System::cycles_since(const Snapshot& s) const {
  return machine_->account().cycles() - s.cycles;
}

sim::Counters System::counters_since(const Snapshot& s) const {
  return machine_->account().counters().delta(s.counters);
}

}  // namespace hn::hypernel
