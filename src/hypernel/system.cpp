#include "hypernel/system.h"

#include "mbm/bitmap_math.h"

namespace hn::hypernel {

System::~System() = default;

Result<std::unique_ptr<System>> System::create(const SystemConfig& config) {
  std::unique_ptr<System> sys(new System(config));
  if (Status s = sys->build(); !s.ok()) return s;
  return sys;
}

Status System::build() {
  machine_ = std::make_unique<sim::Machine>(config_.machine);
  if (config_.metrics) machine_->obs().set_enabled(true);

  // The MBM is standard under Hypernel; a Native system may also carry it
  // (without Hypersec) to reproduce the bare external-monitor baseline and
  // its ATRA weakness (§2, [15]).
  const bool want_mbm =
      config_.enable_mbm && config_.mode != Mode::kKvmGuest;

  kernel::KernelConfig kcfg = config_.kernel;
  if (kcfg.linear_limit == 0) {
    // A pure native kernel keeps all of DRAM; KVM reserves the top for the
    // host (stage-2 tables); Hypernel — and any system carrying the MBM —
    // reserves it as the secure space (§5.2).
    kcfg.linear_limit = (config_.mode == Mode::kNative && !want_mbm)
                            ? machine_->phys().size()
                            : machine_->secure_base();
  }
  kernel_ = std::make_unique<kernel::Kernel>(*machine_, kcfg);

  if (config_.mode == Mode::kKvmGuest) {
    kvm_ = std::make_unique<kvm::KvmHypervisor>(*machine_, *kernel_,
                                                config_.kvm);
    if (Status s = kvm_->init(); !s.ok()) return s;
  }

  if (Status s = kernel_->boot(); !s.ok()) return s;

  if (want_mbm) {
    // Secure-space layout: [bitmap][event ring][Hypersec stack/data].
    mbm::MbmConfig mcfg;
    mcfg.watch_base = 0;
    mcfg.watch_size = machine_->secure_base();
    mcfg.bitmap_base = machine_->secure_base();
    mcfg.ring_base = page_align_up(mcfg.bitmap_base +
                                   mbm::bitmap_bytes_for(mcfg.watch_size));
    mcfg.ring_entries = config_.mbm_ring_entries;
    mcfg.fifo_depth = config_.mbm_fifo_depth;
    mcfg.bitmap_cache_entries = config_.mbm_bitmap_cache_entries;
    mcfg.bitmap_cache_enabled = config_.mbm_bitmap_cache_enabled;
    const u64 ring_end =
        mcfg.ring_base + mcfg.ring_entries * mbm::kRingEntryBytes;
    if (ring_end > machine_->phys().size()) {
      return Status::Invalid("secure space too small for MBM structures");
    }
    mbm_ = std::make_unique<mbm::MemoryBusMonitor>(*machine_, mcfg);
  }

  if (config_.mode == Mode::kHypernel) {
    hypersec_ = std::make_unique<hypersec::Hypersec>(
        *machine_, *kernel_, mbm_.get(), config_.hypersec);
    if (Status s = hypersec_->init(); !s.ok()) return s;
  }
  return Status::Ok();
}

Status System::register_security_app(hypersec::SecurityApp& app) {
  if (hypersec_ == nullptr) {
    return Status::Precondition(
        "security applications require the Hypernel configuration");
  }
  hypersec_->register_app(app);
  return Status::Ok();
}

System::Snapshot System::snapshot() const {
  Snapshot s;
  s.cycles = machine_->account().cycles();
  s.counters = machine_->account().counters();
  return s;
}

double System::us_since(const Snapshot& s) const {
  return machine_->timing().cycles_to_us(machine_->account().cycles() -
                                         s.cycles);
}

Cycles System::cycles_since(const Snapshot& s) const {
  return machine_->account().cycles() - s.cycles;
}

sim::Counters System::counters_since(const Snapshot& s) const {
  return machine_->account().counters().delta(s.counters);
}

// --- Machine snapshot / COW fork ---------------------------------------------

namespace {

inline u64 fold(u64 h, u64 v) {
  return (h ^ v) * 1099511628211ull;  // FNV-1a step over a 64-bit word
}

}  // namespace

u64 System::config_digest() const {
  u64 h = 14695981039346656037ull;
  h = fold(h, static_cast<u64>(config_.mode));
  h = fold(h, config_.machine.dram_size);
  h = fold(h, config_.machine.secure_size);
  h = fold(h, config_.machine.cache.size_bytes);
  h = fold(h, config_.machine.cache.ways);
  h = fold(h, config_.machine.cache.enabled);
  h = fold(h, config_.machine.tlb_entries);
  // Folded only for SMP machines so every single-core digest (and with it
  // every pre-SMP golden, including pinned snapshot files) is unchanged.
  if (config_.machine.cores > 1) h = fold(h, config_.machine.cores);
  h = fold(h, config_.kernel.use_sections);
  h = fold(h, config_.kernel.linear_limit);
  h = fold(h, config_.kernel.timer_period);
  h = fold(h, config_.enable_mbm);
  h = fold(h, config_.mbm_ring_entries);
  h = fold(h, config_.mbm_fifo_depth);
  h = fold(h, config_.mbm_bitmap_cache_entries);
  h = fold(h, config_.mbm_bitmap_cache_enabled);
  h = fold(h, config_.kvm.eager_map);
  h = fold(h, config_.kvm.thp_backing);
  h = fold(h, config_.kvm.recycle_invalidate_permille);
  h = fold(h, config_.kvm.recycle_min_interval);
  h = fold(h, config_.kvm.recycle_burst);
  h = fold(h, config_.kvm.rng_seed);
  h = fold(h, config_.hypersec.verify_cost);
  h = fold(h, config_.hypersec.mbm_noncacheable_remap);
  return h;
}

sim::Snapshot System::save_state() {
  sim::Snapshot snap;
  snap.config_digest = config_digest();
  // The save marker goes in first so it is the last event of the saved
  // ring; every restore links back to it by this sequence id.
  snap.save_seq = machine_->trace().record(machine_->account().cycles(),
                                           sim::TraceKind::kSnapshot, 1, 0);
  sim::SnapWriter w;
  w.put_u64(snap.save_seq);
  machine_->save_state(w);
  kernel_->save_state(w);
  w.put_bool(mbm_ != nullptr);
  if (mbm_) mbm_->save_state(w);
  w.put_bool(kvm_ != nullptr);
  if (kvm_) kvm_->save_state(w);
  w.put_bool(hypersec_ != nullptr);
  if (hypersec_) hypersec_->save_state(w);
  snap.state = w.take();
  snap.pages = machine_->phys().capture();
  return snap;
}

Status System::restore_state(const sim::Snapshot& snap) {
  if (snap.empty()) {
    return Status::Invalid("snapshot: empty snapshot");
  }
  if (snap.config_digest != config_digest()) {
    return Status::Invalid(
        "snapshot: configuration digest mismatch (snapshot was taken from a "
        "differently configured system)");
  }
  if (Status s = machine_->phys().adopt(snap.pages); !s.ok()) return s;
  sim::SnapReader r(snap.state);
  const u64 save_seq = r.get_u64();
  machine_->restore_state(r);
  kernel_->restore_state(r);
  r.section("system");
  const bool had_mbm = r.get_bool();
  if (r.ok() && had_mbm != (mbm_ != nullptr)) {
    r.fail("MBM presence does not match this configuration");
  }
  if (r.ok() && mbm_) mbm_->restore_state(r);
  r.section("system");
  const bool had_kvm = r.get_bool();
  if (r.ok() && had_kvm != (kvm_ != nullptr)) {
    r.fail("KVM presence does not match this configuration");
  }
  if (r.ok() && kvm_) kvm_->restore_state(r);
  r.section("system");
  const bool had_hypersec = r.get_bool();
  if (r.ok() && had_hypersec != (hypersec_ != nullptr)) {
    r.fail("Hypersec presence does not match this configuration");
  }
  if (r.ok() && hypersec_) hypersec_->restore_state(r);
  if (r.ok() && r.remaining() != 0) {
    r.section("system");
    r.fail("trailing bytes after layered state");
  }
  if (Status s = r.status(); !s.ok()) return s;
  // The restored ring ends with the save marker; the restore event links
  // back to it, so offline tools see fork points as explicit edges.
  machine_->trace().record_caused(machine_->account().cycles(),
                                  sim::TraceKind::kSnapshot, save_seq, 2, 0);
  return Status::Ok();
}

}  // namespace hn::hypernel
