// Functional fingerprint extraction: a digest of everything a workload is
// *supposed* to change, excluding everything that is allowed to vary with
// the hardware configuration.
//
// The Hypernel thesis is that Native / KVM-guest / Hypernel (and every
// TLB/cache/granularity knob) are functionally indistinguishable — only
// cycles differ.  The fuzz harness enforces that claim differentially:
// the same operation sequence must yield byte-identical functional
// fingerprints under every configuration.  `cycles`, `monitor_events`
// and `alerts` ride along for reporting and for the *within-class*
// comparisons (monitored configurations against each other), but they are
// excluded from `functional_hash()` because they legitimately depend on
// the configuration class.
#pragma once

#include <string>

#include "common/types.h"
#include "hypernel/system.h"

namespace hn::hypernel {

struct FunctionalFingerprint {
  // --- Functional core: must match across every configuration -------------
  u64 file_hash = 0;       // FNV over every inode's identity + leading data
  u64 inode_count = 0;
  u64 dcache_size = 0;
  u64 live_tasks = 0;
  u64 loaded_modules = 0;
  u64 current_uid = 0;
  u64 op_digest = 0;       // caller-folded digest of per-op outcomes

  // --- Configuration-class observables: reported, never cross-compared ----
  Cycles cycles = 0;
  u64 monitor_events = 0;
  u64 alerts = 0;

  /// Single-word digest of the functional core (order-sensitive FNV fold).
  [[nodiscard]] u64 functional_hash() const;
  [[nodiscard]] bool functionally_equal(const FunctionalFingerprint& o) const {
    return functional_hash() == o.functional_hash();
  }
  /// Human-readable field-by-field difference report ("" when equal).
  [[nodiscard]] std::string diff(const FunctionalFingerprint& o) const;
};

/// FNV-1a fold step shared by fingerprint consumers (executor op digests).
constexpr u64 kFnvOffset = 0xCBF29CE484222325ull;
constexpr u64 kFnvPrime = 0x100000001B3ull;
constexpr u64 fnv_fold(u64 h, u64 w) { return (h ^ w) * kFnvPrime; }

/// Capture the kernel-functional state of a live system.  Walks the whole
/// filesystem (inode identity plus the leading bytes of file data), the
/// dentry cache, process table, module list and the current credential.
/// The walk performs charged machine accesses, so it advances simulated
/// time — deterministically.  `cycles` is captured before the walk.
FunctionalFingerprint take_fingerprint(System& sys);

}  // namespace hn::hypernel
