// Public entry point of the Hypernel library: builds a complete simulated
// system in one of the paper's three evaluation configurations (§7.1):
//
//   kNative   — the kernel alone on the machine,
//   kKvmGuest — the kernel as a guest of the nested-paging hypervisor,
//   kHypernel — the kernel under Hypersec (+ optionally the MBM).
//
// Typical use:
//   hypernel::SystemConfig cfg;
//   cfg.mode = hypernel::Mode::kHypernel;
//   auto sys = hypernel::System::create(cfg).value();
//   sys->kernel().sys_stat("/etc/passwd");
#pragma once

#include <memory>

#include "common/status.h"
#include "common/types.h"
#include "hypersec/hypersec.h"
#include "kernel/kernel.h"
#include "kvm/kvm.h"
#include "mbm/monitor.h"
#include "sim/machine.h"

namespace hn::hypernel {

enum class Mode : u8 { kNative, kKvmGuest, kHypernel };

[[nodiscard]] constexpr const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kNative: return "Native";
    case Mode::kKvmGuest: return "KVM-guest";
    case Mode::kHypernel: return "Hypernel";
  }
  return "?";
}

struct SystemConfig {
  Mode mode = Mode::kHypernel;
  sim::MachineConfig machine;
  kernel::KernelConfig kernel;  // linear_limit derived from mode when 0
  kvm::KvmConfig kvm;
  hypersec::HypersecConfig hypersec;
  /// Attach the MBM (Hypernel mode only).  The bitmap and event ring are
  /// laid out automatically in the secure space.
  bool enable_mbm = true;
  u64 mbm_ring_entries = 8192;
  unsigned mbm_fifo_depth = 64;
  unsigned mbm_bitmap_cache_entries = 16;
  bool mbm_bitmap_cache_enabled = true;
  /// Enable the observability registry (DESIGN.md §10) from the first
  /// instruction of boot, so --metrics-out captures the whole run.
  bool metrics = false;
};

class System {
 public:
  /// Build and boot a system.  On success the kernel is running its init
  /// process and (per mode) KVM or Hypersec is engaged.
  static Result<std::unique_ptr<System>> create(const SystemConfig& config);

  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] Mode mode() const { return config_.mode; }
  sim::Machine& machine() { return *machine_; }
  kernel::Kernel& kernel() { return *kernel_; }
  /// Non-null in kHypernel mode only.
  hypersec::Hypersec* hypersec() { return hypersec_.get(); }
  /// Non-null in kKvmGuest mode only.
  kvm::KvmHypervisor* kvm() { return kvm_.get(); }
  /// Non-null in kHypernel mode with enable_mbm.
  mbm::MemoryBusMonitor* mbm() { return mbm_.get(); }

  /// Register a security application with Hypersec (kHypernel mode).
  Status register_security_app(hypersec::SecurityApp& app);

  // --- Measurement window helpers ------------------------------------------
  struct Snapshot {
    Cycles cycles = 0;
    sim::Counters counters;
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] double us_since(const Snapshot& s) const;
  [[nodiscard]] Cycles cycles_since(const Snapshot& s) const;
  [[nodiscard]] sim::Counters counters_since(const Snapshot& s) const;

  /// Observability snapshot of the machine's metrics registry (empty
  /// values unless SystemConfig::metrics was set).
  [[nodiscard]] obs::Snapshot metrics_snapshot() const {
    return machine_->obs().snapshot();
  }

  // --- Machine snapshot / COW fork (DESIGN.md §12) ---------------------------
  /// FNV digest of the configuration fields that shape simulated state.
  /// Host-only knobs (fast path, metrics) are excluded: snapshots restore
  /// across them.
  [[nodiscard]] u64 config_digest() const;
  /// Capture the full machine + software state: a layered state blob plus
  /// COW-shared DRAM pages (no RAM copy).  Records a kSnapshot(save) trace
  /// event first, so the marker is part of the saved ring and its sequence
  /// id (`save_seq`) survives as the restore event's cause link.
  [[nodiscard]] sim::Snapshot save_state();
  /// Restore a snapshot into this live, identically-configured system
  /// (validated by config digest).  Wiring persists; architectural state
  /// is replaced and host-side caches invalidate through vm_generation.
  /// Records a kSnapshot(restore) event caused by the snapshot's save.
  Status restore_state(const sim::Snapshot& snap);

 private:
  explicit System(const SystemConfig& config) : config_(config) {}
  Status build();

  SystemConfig config_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<mbm::MemoryBusMonitor> mbm_;
  std::unique_ptr<kvm::KvmHypervisor> kvm_;
  std::unique_ptr<hypersec::Hypersec> hypersec_;
};

}  // namespace hn::hypernel
