#include "attacks/scorecard.h"

#include <cstdio>
#include <unordered_map>

#include "exec/sharded_runner.h"
#include "hypernel/fingerprint.h"
#include "sim/trace_io.h"

namespace hn::attacks {
namespace {

using fuzz::FuzzConfigSpec;
using fuzz::RunResult;

/// Does the flight recorder causally link an alert verdict (at/after the
/// tamper) back to a bus write?  This is the end-to-end provenance claim:
/// tampering reached memory, the snooper saw it, the detector judged it.
bool verdict_chains_to_bus_write(const sim::TraceData& trace,
                                 Cycles tamper_at) {
  std::unordered_map<u64, size_t> by_seq;
  by_seq.reserve(trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    by_seq.emplace(trace.events[i].seq, i);
  }
  for (const sim::TraceEvent& e : trace.events) {
    if (e.kind != sim::TraceKind::kVerdict || e.b != 1 || e.at < tamper_at) {
      continue;
    }
    u64 cause = e.cause;
    while (cause != sim::kNoCause) {
      const auto it = by_seq.find(cause);
      if (it == by_seq.end()) break;  // link fell off the ring
      const sim::TraceEvent& up = trace.events[it->second];
      if (up.kind == sim::TraceKind::kBusWrite) return true;
      cause = up.cause;
    }
  }
  return false;
}

ScorecardCell grade_cell(const AttackScenario& scenario,
                         const FuzzConfigSpec& spec, const RunResult& rec,
                         bool trace_attribution) {
  ScorecardCell cell;
  cell.scenario = scenario.name;
  cell.family = scenario.family;
  cell.config = spec.name;
  cell.intended = scenario.intended_detector == spec.name;
  cell.alerts = rec.alert_log.size();

  // The tamper instant: the attack record of the scenario's first
  // declared tamper step.
  const fuzz::AttackRecord* tamper = nullptr;
  for (const fuzz::AttackRecord& a : rec.attacks) {
    if (a.step == scenario.tamper_steps.front()) {
      tamper = &a;
      break;
    }
  }
  if (tamper == nullptr) {
    cell.tamper_skipped = true;
    cell.setup_alerts = cell.alerts;
    return cell;
  }

  for (const fuzz::AlertRecord& a : rec.alert_log) {
    if (a.at < tamper->at) {
      ++cell.setup_alerts;
      continue;
    }
    if (!cell.detected) {
      cell.detected = true;
      cell.has_latency = true;
      cell.latency = a.at - tamper->at;
    }
    if (a.kind == scenario.expected_alert &&
        a.detector == scenario.intended_detector) {
      cell.expected_seen = true;
    }
  }

  if (trace_attribution && cell.detected && !rec.trace_blob.empty()) {
    sim::TraceData trace;
    if (sim::parse_trace(rec.trace_blob, trace).ok()) {
      cell.attributed = verdict_chains_to_bus_write(trace, tamper->at);
    }
  }
  return cell;
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

void append_u64(std::string& out, u64 v) { out += std::to_string(v); }

}  // namespace

std::vector<FuzzConfigSpec> detector_configs() {
  std::vector<FuzzConfigSpec> specs;
  {
    FuzzConfigSpec s;
    s.name = "object-integrity-monitor";
    s.monitor = true;
    s.granularity = secapps::Granularity::kSensitiveFields;
    specs.push_back(s);
  }
  {
    FuzzConfigSpec s;
    s.name = "invariant-checker";
    s.invariant_checker = true;
    specs.push_back(s);
  }
  {
    FuzzConfigSpec s;
    s.name = "kernel-cfi";
    s.cfi_monitor = true;
    specs.push_back(s);
  }
  return specs;
}

Scorecard run_scorecard(const ScorecardOptions& options) {
  std::vector<AttackScenario> lib = scenario_library();
  if (options.cores > 1) {
    // Cross-core cells join the matrix only when there is a second core
    // for the writer to land on.
    const std::vector<AttackScenario>& smp = smp_scenario_library();
    lib.insert(lib.end(), smp.begin(), smp.end());
  }
  std::vector<FuzzConfigSpec> specs = detector_configs();
  for (FuzzConfigSpec& spec : specs) {
    spec.decoupled_quantum = options.decoupled_quantum;
    spec.cores = options.cores == 0 ? 1 : options.cores;
  }
  const std::vector<fuzz::Op> benign_ops = benign_workload();

  fuzz::ExecutorOptions exec_opt;
  exec_opt.capture_trace = options.trace_attribution;
  exec_opt.snapshot_boot = options.snapshot_boot;
  exec_opt.profile = options.profile;
  exec_opt.sample_cycles = options.sample_cycles;

  // One flat index space: scenario-major attack cells, then the benign
  // probes.  run_sharded merges in index order, so everything downstream
  // is independent of the worker count.
  const u64 attack_cells = lib.size() * specs.size();
  const u64 total = attack_cells + specs.size();
  exec::ShardOptions shard;
  shard.jobs = options.jobs;
  std::vector<RunResult> runs = exec::run_sharded<RunResult>(
      total,
      [&](u64 index) {
        if (index < attack_cells) {
          const AttackScenario& s = lib[index / specs.size()];
          return fuzz::run_sequence(specs[index % specs.size()], s.ops,
                                    exec_opt);
        }
        return fuzz::run_sequence(specs[index - attack_cells], benign_ops,
                                  exec_opt);
      },
      shard);

  Scorecard score;
  if (options.profile) {
    for (const RunResult& run : runs) score.profile.merge(run.profile);
  }
  // Sample trace for --trace-out: the first intended hit — except on an
  // SMP matrix, where a cross-core scenario's trace is the interesting
  // one (it carries multi-core provenance, so the report renders the
  // per-core attribution table).  The JSON digest never covers the
  // sample, so this preference cannot move the pinned goldens.
  bool sample_is_smp = false;
  bool sample_ts_is_smp = false;
  for (u64 i = 0; i < attack_cells; ++i) {
    const AttackScenario& scenario = lib[i / specs.size()];
    score.cells.push_back(grade_cell(scenario, specs[i % specs.size()],
                                     runs[i], options.trace_attribution));
    const ScorecardCell& cell = score.cells.back();
    const bool is_smp = scenario.name.rfind("smp-", 0) == 0;
    if (cell.intended && cell.expected_seen && !runs[i].trace_blob.empty() &&
        (score.sample_trace.empty() || (is_smp && !sample_is_smp))) {
      score.sample_trace = runs[i].trace_blob;
      sample_is_smp = is_smp;
    }
    // Sampled stream of the same preferred cell (independent of the trace
    // so --no-trace runs still produce a --timeseries-out artifact).
    if (cell.intended && cell.expected_seen &&
        !runs[i].timeseries_blob.empty() &&
        (score.sample_timeseries.empty() || (is_smp && !sample_ts_is_smp))) {
      score.sample_timeseries = runs[i].timeseries_blob;
      sample_ts_is_smp = is_smp;
    }
  }
  for (size_t c = 0; c < specs.size(); ++c) {
    const RunResult& rec = runs[attack_cells + c];
    score.benign.push_back(BenignCell{specs[c].name, rec.fingerprint.alerts,
                                      rec.fingerprint.monitor_events});
  }

  // --- per-detector rollup -------------------------------------------------
  score.all_intended_hit = true;
  score.zero_false_positives = true;
  score.all_hits_attributed = true;
  for (size_t c = 0; c < specs.size(); ++c) {
    DetectorSummary sum;
    sum.detector = specs[c].name;
    u64 latency_total = 0;
    for (const ScorecardCell& cell : score.cells) {
      if (cell.config != sum.detector) continue;
      sum.false_positives += cell.setup_alerts;
      if (cell.intended) {
        ++sum.intended_cells;
        if (cell.expected_seen) {
          ++sum.hits;
          latency_total += cell.latency;
          if (!cell.attributed) score.all_hits_attributed = false;
        } else {
          ++sum.misses;
          score.all_intended_hit = false;
        }
      } else if (cell.detected) {
        ++sum.cross_detections;
      }
    }
    sum.false_positives += score.benign[c].alerts;
    if (sum.hits > 0) sum.mean_latency = latency_total / sum.hits;
    if (sum.false_positives > 0) score.zero_false_positives = false;
    score.summary.push_back(sum);
  }
  if (!options.trace_attribution) score.all_hits_attributed = false;

  // --- deterministic JSON --------------------------------------------------
  // snapshot_boot and jobs are deliberately NOT echoed into the report:
  // neither may change results, so the JSON must be byte-identical across
  // them.  trace_attribution is — it gates the attribution fields.
  std::string& j = score.json;
  j += "{\n  \"scorecard_version\": 1,\n  \"options\": "
       "{\"trace_attribution\": ";
  append_bool(j, options.trace_attribution);
  // The core count is echoed only when it actually shapes the matrix, so
  // every single-core report stays byte-identical to the pre-SMP format.
  if (options.cores > 1) {
    j += ", \"cores\": ";
    append_u64(j, options.cores);
  }
  j += "},\n  \"cells\": [\n";
  for (size_t i = 0; i < score.cells.size(); ++i) {
    const ScorecardCell& cell = score.cells[i];
    j += "    {\"scenario\": \"" + cell.scenario + "\", \"family\": \"" +
         family_name(cell.family) + "\", \"config\": \"" + cell.config +
         "\", \"intended\": ";
    append_bool(j, cell.intended);
    j += ", \"detected\": ";
    append_bool(j, cell.detected);
    j += ", \"expected_seen\": ";
    append_bool(j, cell.expected_seen);
    j += ", \"alerts\": ";
    append_u64(j, cell.alerts);
    j += ", \"setup_alerts\": ";
    append_u64(j, cell.setup_alerts);
    j += ", \"latency_cycles\": ";
    if (cell.has_latency) {
      append_u64(j, cell.latency);
    } else {
      j += "null";
    }
    j += ", \"attributed\": ";
    append_bool(j, cell.attributed);
    j += ", \"tamper_skipped\": ";
    append_bool(j, cell.tamper_skipped);
    j += i + 1 < score.cells.size() ? "},\n" : "}\n";
  }
  j += "  ],\n  \"benign\": [\n";
  for (size_t i = 0; i < score.benign.size(); ++i) {
    const BenignCell& b = score.benign[i];
    j += "    {\"config\": \"" + b.config + "\", \"false_positives\": ";
    append_u64(j, b.alerts);
    j += ", \"events\": ";
    append_u64(j, b.events);
    j += i + 1 < score.benign.size() ? "},\n" : "}\n";
  }
  j += "  ],\n  \"summary\": [\n";
  for (size_t i = 0; i < score.summary.size(); ++i) {
    const DetectorSummary& s = score.summary[i];
    j += "    {\"detector\": \"" + s.detector + "\", \"intended\": ";
    append_u64(j, s.intended_cells);
    j += ", \"hits\": ";
    append_u64(j, s.hits);
    j += ", \"misses\": ";
    append_u64(j, s.misses);
    j += ", \"cross_detections\": ";
    append_u64(j, s.cross_detections);
    j += ", \"false_positives\": ";
    append_u64(j, s.false_positives);
    j += ", \"mean_latency_cycles\": ";
    append_u64(j, s.mean_latency);
    j += i + 1 < score.summary.size() ? "},\n" : "}\n";
  }
  j += "  ],\n  \"all_intended_hit\": ";
  append_bool(j, score.all_intended_hit);
  j += ",\n  \"zero_false_positives\": ";
  append_bool(j, score.zero_false_positives);
  j += ",\n  \"all_hits_attributed\": ";
  append_bool(j, score.all_hits_attributed);
  j += "\n}\n";

  score.digest = hypernel::kFnvOffset;
  for (const char c : score.json) {
    score.digest = hypernel::fnv_fold(score.digest, static_cast<u8>(c));
  }
  return score;
}

std::string render_scorecard(const Scorecard& score) {
  std::string out;
  out +=
      "detector                    hits/intended  cross  FPs  mean-latency\n";
  for (const DetectorSummary& s : score.summary) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-27s %llu/%llu            %-6llu %-4llu %llu cy\n",
                  s.detector.c_str(),
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.intended_cells),
                  static_cast<unsigned long long>(s.cross_detections),
                  static_cast<unsigned long long>(s.false_positives),
                  static_cast<unsigned long long>(s.mean_latency));
    out += line;
  }
  out += "\n";
  for (const ScorecardCell& cell : score.cells) {
    if (!cell.intended) continue;
    char line[200];
    std::snprintf(
        line, sizeof line, "%-24s %-22s %s%s  latency=%llu cy  alerts=%llu\n",
        cell.scenario.c_str(), cell.config.c_str(),
        cell.expected_seen ? "HIT " : (cell.tamper_skipped ? "SKIP" : "MISS"),
        cell.attributed ? " (attributed)" : "",
        static_cast<unsigned long long>(cell.latency),
        static_cast<unsigned long long>(cell.alerts));
    out += line;
  }
  for (const BenignCell& b : score.benign) {
    char line[120];
    std::snprintf(line, sizeof line, "%-24s %-22s %s  alerts=%llu\n", "benign",
                  b.config.c_str(), b.alerts == 0 ? "CLEAN" : "FP",
                  static_cast<unsigned long long>(b.alerts));
    out += line;
  }
  return out;
}

}  // namespace hn::attacks
