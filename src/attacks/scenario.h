// The structured rootkit-scenario library (§8 threat model): each entry
// is a small, replayable op program — setup ops that build the kernel
// state a real rootkit would find, then tamper ops that attack it — with
// declared ground truth: the attack family, the SecurityApp that must
// detect it, and the exact alert classification it must raise.
//
// Scenarios are the shared vocabulary of three consumers:
//   * the scorecard harness (attacks/scorecard.h) runs every
//     (scenario x detector) cell and grades coverage against the ground
//     truth;
//   * the per-attack regression tests replay each scenario under its
//     intended detector;
//   * the fuzzer splices scenario programs into generated sequences as
//     structured seeds (GeneratorOptions::scenario_pool).
//
// The library is append-only and index-stable: tests pin digests over
// the scenario order.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fuzz/ops.h"
#include "secapps/alert.h"

namespace hn::attacks {

/// Rootkit technique families covered by the library (§8, Table 3 of the
/// evaluation narrative).
enum class AttackFamily : u8 {
  kCredTheft,            // cred uid/cap forgery (privilege escalation)
  kDentryHiding,         // dcache manipulation (file hiding)
  kSyscallPatch,         // syscall-table entry rewriting
  kVectorPatch,          // exception-vector rewriting
  kModuleTextInjection,  // sealed module text patched in place
  kPtRemap,              // ATRA-style page-table remapping
  kCount,
};

[[nodiscard]] constexpr const char* family_name(AttackFamily family) {
  switch (family) {
    case AttackFamily::kCredTheft: return "cred-theft";
    case AttackFamily::kDentryHiding: return "dentry-hiding";
    case AttackFamily::kSyscallPatch: return "syscall-patch";
    case AttackFamily::kVectorPatch: return "vector-patch";
    case AttackFamily::kModuleTextInjection: return "module-text-injection";
    case AttackFamily::kPtRemap: return "pt-remap";
    case AttackFamily::kCount: break;
  }
  return "?";
}

struct AttackScenario {
  std::string name;  // stable slug ("cred-theft-setuid", ...)
  AttackFamily family = AttackFamily::kCount;
  std::string description;
  /// The replayable program: setup ops followed by tamper ops.
  std::vector<fuzz::Op> ops;
  /// Indices (into `ops`) of the tamper ops — everything before the first
  /// one is benign setup and must raise no alert.
  std::vector<u64> tamper_steps;
  /// Ground truth: the SecurityApp::name() that must detect the tamper...
  std::string intended_detector;
  /// ...and the classification its alert must carry.
  secapps::AlertKind expected_alert = secapps::AlertKind::kCount;
};

/// The scenario library, in its stable order.
[[nodiscard]] const std::vector<AttackScenario>& scenario_library();

/// Cross-core attack scenarios: a writer task migrated to a secondary
/// core tampers while the victim workload keeps serving on core 0.  Kept
/// out of scenario_library() (whose order and content feed the fuzzer's
/// structured-seed pool and are digest-pinned); the scorecard appends
/// these cells only on SMP machines (--cores > 1), where the fork/switch
/// choreography actually lands the writer on another core.
[[nodiscard]] const std::vector<AttackScenario>& smp_scenario_library();

/// Library lookup by slug; nullptr when unknown.
[[nodiscard]] const AttackScenario* find_scenario(std::string_view name);

/// Just the op programs — the fuzzer's structured-seed pool
/// (fuzz::FuzzOptions::scenario_pool).
[[nodiscard]] std::vector<std::vector<fuzz::Op>> scenario_pool();

/// A fixed benign workload (VFS + memory + processes + IPC + modules,
/// no attacks, no uid-0 transitions): the scorecard's false-positive
/// probe.  Every detector must stay silent across it.
[[nodiscard]] std::vector<fuzz::Op> benign_workload();

}  // namespace hn::attacks
