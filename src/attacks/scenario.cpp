#include "attacks/scenario.h"

namespace hn::attacks {

using fuzz::Op;
using fuzz::OpKind;
using secapps::AlertKind;

namespace {

Op op(OpKind kind, u64 a = 0, u64 b = 0, u64 c = 0) {
  return Op{kind, a, b, c};
}

std::vector<AttackScenario> build_library() {
  std::vector<AttackScenario> lib;

  // --- cred theft (footnote 2: elevate any process to root) ----------------
  // Drop to uid 1000 first so the uid->0 forgery is an actual transition.
  lib.push_back(AttackScenario{
      "cred-theft-setuid",
      AttackFamily::kCredTheft,
      "CPU store forges the current task's cred uid word back to root",
      {op(OpKind::kSetuid, 1), op(OpKind::kAttackCredWrite, 0, 0, 0)},
      {1},
      "object-integrity-monitor",
      AlertKind::kCredIdLowered,
  });
  lib.push_back(AttackScenario{
      "cred-theft-dma",
      AttackFamily::kCredTheft,
      "DMA bus master forges the cred uid word, bypassing the MMU",
      {op(OpKind::kSetuid, 1), op(OpKind::kAttackDmaWrite, 0, 0, 0)},
      {1},
      "object-integrity-monitor",
      AlertKind::kCredIdLowered,
  });

  // --- dentry hiding (footnote 2: seize a dentry, manipulate its inode) ----
  lib.push_back(AttackScenario{
      "dentry-hide-vtable",
      AttackFamily::kDentryHiding,
      "d_op vtable of a cached dentry swapped for a rootkit's hook table",
      {op(OpKind::kCreat, 1), op(OpKind::kAttackDentryWrite, 1, 0, 0)},
      {1},
      "object-integrity-monitor",
      AlertKind::kDentryOpsHooked,
  });
  lib.push_back(AttackScenario{
      "dentry-hide-inode",
      AttackFamily::kDentryHiding,
      "d_inode of a live dentry redirected at a doppelganger inode",
      {op(OpKind::kCreat, 1), op(OpKind::kAttackDentryWrite, 3, 0, 0)},
      {1},
      "object-integrity-monitor",
      AlertKind::kDentryInodeHijacked,
  });

  // --- syscall-table patching ----------------------------------------------
  lib.push_back(AttackScenario{
      "syscall-stub",
      AttackFamily::kSyscallPatch,
      "syscall-table slot 0 redirected at an attacker stub",
      {op(OpKind::kAttackSyscallPatch, 0, 0, 0)},
      {0},
      "kernel-cfi",
      AlertKind::kSyscallPatched,
  });
  lib.push_back(AttackScenario{
      "syscall-crosswire",
      AttackFamily::kSyscallPatch,
      "syscall-table slot 5 cross-wired to another legitimate handler",
      {op(OpKind::kAttackSyscallPatch, 5, 0, 2)},
      {0},
      "kernel-cfi",
      AlertKind::kSyscallPatched,
  });

  // --- exception-vector patching -------------------------------------------
  lib.push_back(AttackScenario{
      "vector-detour",
      AttackFamily::kVectorPatch,
      "exception-vector entry 1 detoured past its verified prologue",
      {op(OpKind::kAttackVectorPatch, 1, 0, 1)},
      {0},
      "kernel-cfi",
      AlertKind::kVectorPatched,
  });

  // --- module text injection -----------------------------------------------
  lib.push_back(AttackScenario{
      "module-text-inject",
      AttackFamily::kModuleTextInjection,
      "sealed module text word overwritten with attacker code",
      {op(OpKind::kInsmod, 2, 7, 0x5EED),
       op(OpKind::kAttackModuleText, 0, 1, 0)},
      {1},
      "kernel-cfi",
      AlertKind::kModuleTextPatched,
  });

  // --- page-table remapping (ATRA-style, §8 hardware vector) ---------------
  lib.push_back(AttackScenario{
      "pt-remap-secure-window",
      AttackFamily::kPtRemap,
      "leaf descriptor planted via DMA: writable window into secure space",
      {op(OpKind::kAttackPtRemap, 0, 0, 0)},
      {0},
      "invariant-checker",
      AlertKind::kPtPageTampered,
  });
  lib.push_back(AttackScenario{
      "pt-remap-wx",
      AttackFamily::kPtRemap,
      "leaf descriptor planted via DMA: writable+executable kernel page",
      {op(OpKind::kAttackPtRemap, 0, 0, 2)},
      {0},
      "invariant-checker",
      AlertKind::kPtPageTampered,
  });

  return lib;
}

std::vector<AttackScenario> build_smp_library() {
  std::vector<AttackScenario> lib;

  // Each program forks a writer task (the load balancer places it on the
  // least-loaded secondary core), migrates execution there via the
  // scheduler, tampers from that core, then returns to core 0 where the
  // benign victim workload keeps serving syscalls.  The tamper ops are
  // the same bus writes as the single-core scenarios — the MBM sits on
  // the shared bus, so provenance (TraceEvent::core) is the only
  // difference the detectors see.
  lib.push_back(AttackScenario{
      "smp-cross-core-syscall-stub",
      AttackFamily::kSyscallPatch,
      "writer on core 1 patches syscall-table slot 0 while core 0 serves",
      {op(OpKind::kFork), op(OpKind::kSwitchTask, 1),
       op(OpKind::kAttackSyscallPatch, 0, 0, 0), op(OpKind::kSwitchTask, 0),
       op(OpKind::kStat, 0)},
      {2},
      "kernel-cfi",
      AlertKind::kSyscallPatched,
  });
  lib.push_back(AttackScenario{
      "smp-cross-core-cred-theft",
      AttackFamily::kCredTheft,
      "forked writer on core 1 forges the shared cred back to root",
      {op(OpKind::kSetuid, 1), op(OpKind::kFork), op(OpKind::kSwitchTask, 1),
       op(OpKind::kAttackCredWrite, 0, 0, 0), op(OpKind::kSwitchTask, 0),
       op(OpKind::kStat, 0)},
      {3},
      "object-integrity-monitor",
      AlertKind::kCredIdLowered,
  });

  return lib;
}

}  // namespace

const std::vector<AttackScenario>& scenario_library() {
  static const std::vector<AttackScenario> lib = build_library();
  return lib;
}

const std::vector<AttackScenario>& smp_scenario_library() {
  static const std::vector<AttackScenario> lib = build_smp_library();
  return lib;
}

const AttackScenario* find_scenario(std::string_view name) {
  for (const AttackScenario& s : scenario_library()) {
    if (s.name == name) return &s;
  }
  for (const AttackScenario& s : smp_scenario_library()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::vector<fuzz::Op>> scenario_pool() {
  std::vector<std::vector<fuzz::Op>> pool;
  pool.reserve(scenario_library().size());
  for (const AttackScenario& s : scenario_library()) pool.push_back(s.ops);
  return pool;
}

std::vector<fuzz::Op> benign_workload() {
  // Kernel life without a rootkit: files, directories, mappings, process
  // churn, IPC round-trips, module load/call/unload.  Deliberately no
  // setuid(0) — a legitimate uid->0 transition is indistinguishable from
  // cred forgery at the bus, and the monitor's policy (correctly, per the
  // paper's CPU-write caveat) alerts on it.
  return {
      op(OpKind::kMkdir),
      op(OpKind::kCreat, 0, 0, 1),      // inside /d0
      op(OpKind::kCreat, 1, 0, 2),      // at the root
      op(OpKind::kWriteFile, 0, 3, 0x11),
      op(OpKind::kReadFile, 0, 3, 0x11),
      op(OpKind::kStat, 1),
      op(OpKind::kRename, 1, 0, 0),
      op(OpKind::kMmap, 2, 1, 0),
      op(OpKind::kUserMemory, 64, 2, 0xABCD),
      op(OpKind::kFork, 0, 0, 0),
      op(OpKind::kSetuid, 1),           // uid 1000: never back to 0
      op(OpKind::kSetuid, 2),           // uid 1001
      op(OpKind::kSigaction, 4, 0, 0),
      op(OpKind::kPipeRoundTrip, 0, 0, 3),
      op(OpKind::kSocketRoundTrip, 0, 0, 5),
      op(OpKind::kInsmod, 1, 3, 0xF00D),
      op(OpKind::kModuleCall, 0, 0, 1),
      op(OpKind::kUserCompute, 5, 0, 0),
      op(OpKind::kSwitchTask, 1, 0, 0),
      op(OpKind::kStat, 0),
      op(OpKind::kPruneDcache, 0, 0, 0),
      op(OpKind::kRmmod, 0, 0, 0),
      op(OpKind::kMunmap, 0, 0, 0),
      op(OpKind::kUnlink, 0, 0, 0),
      op(OpKind::kExit, 0, 0, 0),
  };
}

}  // namespace hn::attacks
