// The per-detector scorecard harness: every scenario in the attack
// library runs under every detector configuration (plus one benign
// false-positive probe per detector), and the results are graded against
// the library's declared ground truth.
//
// Outputs are deterministic by construction: cells fan out over
// exec::run_sharded (index-ordered merge), every graded quantity is a
// pure function of simulated state (alert counts, simulated-cycle
// latencies, causal-trace attribution), and the JSON renders in a fixed
// order.  Two scorecards with equal options are byte-identical at any
// --jobs value, snapshot-booted or fresh-booted — the scorecard tests
// pin exactly this.
#pragma once

#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "fuzz/executor.h"

namespace hn::attacks {

struct ScorecardOptions {
  /// Worker threads for cell evaluation (0 = hardware concurrency).
  /// Never changes the scorecard, only wall-clock.
  unsigned jobs = 1;
  /// Fork every cell from a per-configuration boot snapshot.  Results are
  /// bit-identical either way (only with trace_attribution off: captured
  /// runs always boot fresh).
  bool snapshot_boot = false;
  /// Capture the causal flight recorder per cell and require every
  /// detection to be attributable to a bus write through the cause chain.
  bool trace_attribution = true;
  /// Non-zero = temporally decoupled execution for every cell
  /// (sim::MachineConfig::decoupled_quantum).  Host wiring only: the
  /// scorecard JSON must be byte-identical at any quantum — the
  /// scorecard tests pin this.
  Cycles decoupled_quantum = 0;
  /// Enable the host self-time profiler per cell and merge the reports
  /// into Scorecard::profile.  Reporting only, never part of the digest.
  bool profile = false;
  /// Simulated core count for every cell.  At >1 the SMP cross-core
  /// scenarios (smp_scenario_library) join the matrix and the JSON echoes
  /// the count; at 1 the scorecard is byte-identical to the pre-SMP one.
  unsigned cores = 1;
  /// Non-zero = sample time-series tracks every N simulated cycles on the
  /// cell that produces Scorecard::sample_trace, returning the stream in
  /// Scorecard::sample_timeseries.  Host-side only: the JSON and digest
  /// are unchanged at any value — the scorecard tests pin this.
  Cycles sample_cycles = 0;
};

/// One (scenario x detector-config) cell, graded.
struct ScorecardCell {
  std::string scenario;
  AttackFamily family = AttackFamily::kCount;
  std::string config;         // detector configuration (== SecurityApp name)
  bool intended = false;      // this config hosts the intended detector
  bool tamper_skipped = false;  // the tamper op could not run (no target)
  bool detected = false;        // any alert at/after the tamper
  bool expected_seen = false;   // the declared AlertKind, from the
                                // intended detector, at/after the tamper
  u64 alerts = 0;         // total alerts over the run
  u64 setup_alerts = 0;   // alerts before the tamper: setup must be silent
  bool has_latency = false;
  Cycles latency = 0;     // first alert at/after the tamper - tamper start
  /// Detection causally linked to a bus write in the flight recorder
  /// (always false with trace_attribution off).
  bool attributed = false;
};

/// The benign false-positive probe for one detector configuration.
struct BenignCell {
  std::string config;
  u64 alerts = 0;  // every one is a false positive
  u64 events = 0;  // monitor events processed (work done staying silent)
};

/// Per-detector rollup over the cells.
struct DetectorSummary {
  std::string detector;
  u64 intended_cells = 0;
  u64 hits = 0;    // intended cells with the declared alert seen
  u64 misses = 0;  // intended cells without it
  u64 cross_detections = 0;  // non-intended cells that still detected
  u64 false_positives = 0;   // benign-probe alerts + setup-phase alerts
  u64 mean_latency = 0;      // cycles, integer mean over hits
};

struct Scorecard {
  std::vector<ScorecardCell> cells;  // scenario-major, config-minor order
  std::vector<BenignCell> benign;
  std::vector<DetectorSummary> summary;
  bool all_intended_hit = false;
  bool zero_false_positives = false;
  /// With trace_attribution: every hit carries a causal chain.
  bool all_hits_attributed = false;
  std::string json;  // the full deterministic report
  u64 digest = 0;    // FNV-1a over the JSON bytes
  /// Flight-recorder blob of the first intended hit (cell order), for
  /// artifact upload / offline rendering.  Empty with trace_attribution
  /// off.  Not part of the digest contract.
  std::vector<u8> sample_trace;
  /// Sampled HNTSERIE stream of the same first-intended-hit cell
  /// (ScorecardOptions::sample_cycles).  Like sample_trace, an artifact —
  /// not part of the digest contract.
  std::vector<u8> sample_timeseries;
  /// Merged per-cell self-time reports (ScorecardOptions::profile).
  /// Host wall clock — never part of the digest contract.
  obs::ProfileReport profile;

  [[nodiscard]] bool ok(bool require_attribution) const {
    return all_intended_hit && zero_false_positives &&
           (!require_attribution || all_hits_attributed);
  }
};

/// The detector configurations the scorecard exercises, named after the
/// SecurityApp each hosts.
[[nodiscard]] std::vector<fuzz::FuzzConfigSpec> detector_configs();

/// Run the full (scenario x detector) matrix plus benign probes.
[[nodiscard]] Scorecard run_scorecard(const ScorecardOptions& options = {});

/// Human-readable table (the CI step summary): one row per detector plus
/// the per-cell grid.
[[nodiscard]] std::string render_scorecard(const Scorecard& score);

}  // namespace hn::attacks
