// Address arithmetic of the MBM bitmap (§5.3): one bit per 8-byte word of
// the watched physical range, packed into 64-bit bitmap words stored in the
// secure space.  Pure functions, exhaustively unit-tested.
#pragma once

#include "common/types.h"

namespace hn::mbm {

/// Index of the monitoring bit for physical address `pa` within a watch
/// window starting at `watch_base`.  `pa` need not be word aligned; all
/// bytes of a word share one bit.
constexpr u64 bit_index_for(PhysAddr pa, PhysAddr watch_base) {
  return (pa - watch_base) / kWordSize;
}

/// Physical address of the 64-bit bitmap word holding `bit_index`.
constexpr PhysAddr bitmap_word_addr(u64 bit_index, PhysAddr bitmap_base) {
  return bitmap_base + (bit_index / 64) * 8;
}

/// Bit position of `bit_index` within its bitmap word.
constexpr unsigned bit_position(u64 bit_index) {
  return static_cast<unsigned>(bit_index % 64);
}

/// Bytes of bitmap needed to cover `watch_size` bytes of memory.
/// 1 bit per word => each bitmap byte covers 64 bytes of watched memory.
constexpr u64 bitmap_bytes_for(u64 watch_size) {
  const u64 words = (watch_size + kWordSize - 1) / kWordSize;
  return (words + 7) / 8;
}

/// Bytes of watched memory one 64-bit bitmap word covers (64 words).
inline constexpr u64 kBytesPerBitmapWord = 64 * kWordSize;  // 512

}  // namespace hn::mbm
