// The MBM's internal bitmap cache (Fig. 5): avoids a main-memory fetch of
// the bitmap word for every snooped write.  Read-allocate policy; entries
// are *updated in place* when the snooper observes a memory write to the
// bitmap region (§6.3), so Hypersec's non-cacheable bitmap writes keep the
// cache coherent without an explicit invalidate port.
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/snapshot.h"

namespace hn::mbm {

class BitmapCache {
 public:
  explicit BitmapCache(unsigned entries, bool enabled = true)
      : entries_(entries), enabled_(enabled) {}

  struct LookupResult {
    bool hit = false;
    u64 value = 0;
  };

  /// Look up the bitmap word at physical address `word_addr`.
  LookupResult lookup(PhysAddr word_addr) {
    if (!enabled_) {
      ++misses_;
      return {};
    }
    Entry& e = slot(word_addr);
    if (e.valid && e.addr == word_addr) {
      ++hits_;
      return {true, e.value};
    }
    ++misses_;
    return {};
  }

  /// Read-allocate: install the word fetched from main memory.
  void fill(PhysAddr word_addr, u64 value) {
    if (!enabled_) return;
    Entry& e = slot(word_addr);
    e.valid = true;
    e.addr = word_addr;
    e.value = value;
  }

  /// Write-update: a bus write to the bitmap region was observed.
  /// Updates a present entry; does not allocate (read-allocate policy).
  void observe_write(PhysAddr word_addr, u64 value) {
    if (!enabled_) return;
    Entry& e = slot(word_addr);
    if (e.valid && e.addr == word_addr) e.value = value;
  }

  void invalidate_all() {
    for (Entry& e : slots_) e.valid = false;
  }

  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u64 misses() const { return misses_; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] unsigned entries() const { return entries_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // The lazily-allocated slot array round-trips exactly: an empty vector
  // stays empty so the first post-restore lookup still allocates it.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(slots_.size());
    for (const Entry& e : slots_) {
      w.put_bool(e.valid);
      w.put_u64(e.addr);
      w.put_u64(e.value);
    }
    w.put_u64(hits_);
    w.put_u64(misses_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("mbm bitmap cache");
    const u64 n = r.get_count("slot");
    if (r.ok() && n != 0 && n != entries_) {
      r.fail("slot count " + std::to_string(n) +
             " does not match configured entries");
      return;
    }
    slots_.clear();
    slots_.resize(r.ok() ? n : 0);
    for (Entry& e : slots_) {
      e.valid = r.get_bool();
      e.addr = r.get_u64();
      e.value = r.get_u64();
    }
    hits_ = r.get_u64();
    misses_ = r.get_u64();
  }

 private:
  struct Entry {
    bool valid = false;
    PhysAddr addr = 0;
    u64 value = 0;
  };

  Entry& slot(PhysAddr word_addr) {
    if (slots_.empty()) slots_.resize(entries_);
    return slots_[(word_addr / 8) % entries_];  // direct-mapped
  }

  unsigned entries_;
  bool enabled_;
  std::vector<Entry> slots_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace hn::mbm
