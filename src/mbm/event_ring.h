// The MBM output ring buffer (§5.3 step 5): (address, value) records of
// detected writes, stored in the secure space where the kernel cannot
// reach them.  The MBM produces entries through its coherent memory port;
// Hypersec consumes them from the interrupt handler (§5.3 step 7).
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace hn::mbm {

struct MonitorEvent {
  PhysAddr paddr = 0;
  u64 value = 0;
  /// Flight-recorder provenance: seq of the kMbmDetect event that produced
  /// this record.  Host-side sideband only — the simulated 16-byte ring
  /// entry stays {paddr, value}; the real MBM carries no such field.
  u64 trace_seq = sim::kNoCause;
  /// Bus instant of the monitored store (host-side sideband, like
  /// trace_seq): lets the Hypersec driver attribute end-to-end detection
  /// latency live (hypersec.detect.e2e_cycles) without a trace ring.
  Cycles at = 0;
};

inline constexpr u64 kRingEntryBytes = 16;  // {u64 paddr, u64 value}

class EventRing {
 public:
  EventRing(sim::Machine& machine, PhysAddr base, u64 entries)
      : machine_(machine),
        base_(base),
        entries_(entries),
        shadow_seq_(entries, sim::kNoCause),
        shadow_at_(entries, 0) {}

  [[nodiscard]] PhysAddr base() const { return base_; }
  [[nodiscard]] u64 capacity() const { return entries_; }
  [[nodiscard]] u64 size() const { return head_ - tail_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] u64 overflow_drops() const { return drops_; }
  [[nodiscard]] u64 total_pushed() const { return pushed_; }

  /// Producer side (MBM decision unit).  Returns false on overflow.
  bool push(const MonitorEvent& ev) {
    if (size() >= entries_) {
      ++drops_;
      return false;
    }
    const u64 slot = head_ % entries_;
    u64 record[2] = {ev.paddr, ev.value};
    machine_.dma_write_block(base_ + slot * kRingEntryBytes, record,
                             kRingEntryBytes);
    shadow_seq_[slot] = ev.trace_seq;
    shadow_at_[slot] = ev.at;
    ++head_;
    ++pushed_;
    return true;
  }

  /// Consumer side (Hypersec IRQ handler).  Reads through the EL2 linear
  /// map so the fetch cost lands on the CPU, as in the real system.
  bool pop(MonitorEvent& out) {
    if (empty()) return false;
    const u64 slot = tail_ % entries_;
    out.paddr = machine_.el2_read64(base_ + slot * kRingEntryBytes);
    out.value = machine_.el2_read64(base_ + slot * kRingEntryBytes + 8);
    out.trace_seq = shadow_seq_[slot];
    out.at = shadow_at_[slot];
    ++tail_;
    return true;
  }

  void reset() {
    head_ = tail_ = 0;
    drops_ = pushed_ = 0;
    std::fill(shadow_seq_.begin(), shadow_seq_.end(), sim::kNoCause);
    std::fill(shadow_at_.begin(), shadow_at_.end(), Cycles{0});
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Ring *data* lives in simulated secure memory (restored via pages);
  // the device indices and host-side provenance sideband serialize here.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(head_);
    w.put_u64(tail_);
    w.put_u64(drops_);
    w.put_u64(pushed_);
    w.put_u64(shadow_seq_.size());
    w.put_bytes(shadow_seq_.data(), shadow_seq_.size() * sizeof(u64));
    w.put_bytes(shadow_at_.data(), shadow_at_.size() * sizeof(Cycles));
  }

  void restore_state(sim::SnapReader& r) {
    r.section("mbm event ring");
    head_ = r.get_u64();
    tail_ = r.get_u64();
    drops_ = r.get_u64();
    pushed_ = r.get_u64();
    const u64 n = r.get_count("shadow slot");
    if (r.ok() && n != entries_) {
      r.fail("capacity " + std::to_string(n) +
             " does not match this configuration");
      return;
    }
    r.get_bytes(shadow_seq_.data(), shadow_seq_.size() * sizeof(u64));
    r.get_bytes(shadow_at_.data(), shadow_at_.size() * sizeof(Cycles));
  }

 private:
  sim::Machine& machine_;
  PhysAddr base_;
  u64 entries_;
  u64 head_ = 0;  // producer index (device register, not in memory)
  u64 tail_ = 0;  // consumer index
  u64 drops_ = 0;
  u64 pushed_ = 0;
  std::vector<u64> shadow_seq_;  // per-slot provenance, parallel to the ring
  std::vector<Cycles> shadow_at_;  // per-slot store bus instant (sideband)
};

}  // namespace hn::mbm
