#include "mbm/monitor.h"

#include <cassert>
#include <cstring>

namespace hn::mbm {

MemoryBusMonitor::MemoryBusMonitor(sim::Machine& machine,
                                   const MbmConfig& config)
    : machine_(machine),
      config_(config),
      fifo_(config.fifo_depth),
      bitmap_cache_(config.bitmap_cache_entries, config.bitmap_cache_enabled),
      ring_(machine, config.ring_base, config.ring_entries) {
  assert(config_.watch_size > 0);
  assert(machine_.phys().contains(config_.bitmap_base,
                                  bitmap_bytes_for(config_.watch_size)));
  assert(machine_.phys().contains(config_.ring_base,
                                  config_.ring_entries * kRingEntryBytes));
  obs::Registry& obs = machine_.obs();
  obs_word_writes_ = obs.counter("mbm.snoop.word_writes");
  obs_fifo_drops_ = obs.counter("mbm.fifo.drops");
  obs_fifo_high_water_ = obs.gauge("mbm.fifo.high_water");
  obs_cache_hits_ = obs.counter("mbm.bitmap.cache_hits");
  obs_cache_misses_ = obs.counter("mbm.bitmap.cache_misses");
  obs_fetches_ = obs.counter("mbm.bitmap.fetches");
  obs_detections_ = obs.counter("mbm.detections");
  obs_irqs_ = obs.counter("mbm.irqs");
  obs_service_cycles_ = obs.histogram("mbm.fifo.service_cycles");
  // Time-series tracks probe the raw accumulators (not the registry
  // handles), so sampled streams exist even with metrics disabled.
  // Enrollment order here is part of the deterministic serialization
  // order: machine per-core tracks, then these, then kernel/hypersec.
  obs::TimeSeries& ts = machine_.timeseries();
  ts.enroll("mbm.fifo.occupancy", obs::TrackKind::kLevel,
            [this] { return static_cast<u64>(fifo_.occupancy()); });
  ts.enroll("mbm.fifo.drops", obs::TrackKind::kCounter,
            [this] { return fifo_.drops(); });
  ts.enroll("mbm.fifo.wait_cycles", obs::TrackKind::kCounter,
            [this] { return fifo_wait_cycles_; });
  ts.enroll("mbm.fifo.service_cycles", obs::TrackKind::kCounter,
            [this] { return fifo_service_cycles_; });
  ts.enroll("mbm.fifo.service_count", obs::TrackKind::kCounter,
            [this] { return fifo_service_count_; });
  ts.enroll("mbm.snoop.word_writes", obs::TrackKind::kCounter,
            [this] { return snooped_word_writes_; });
  ts.enroll("mbm.detections", obs::TrackKind::kCounter,
            [this] { return detections_; });
  machine_.bus().attach_snooper(this);
}

MemoryBusMonitor::~MemoryBusMonitor() {
  machine_.timeseries().unenroll_prefix("mbm.");
  machine_.bus().detach_snooper(this);
}

void MemoryBusMonitor::on_transaction(const sim::BusTransaction& txn) {
  if (!enabled_) return;
  switch (txn.op) {
    case sim::BusOp::kWriteWord:
      handle_word_write(txn.paddr, txn.value, txn.timestamp,
                        /*from_line=*/false, txn.trace_seq);
      return;
    case sim::BusOp::kWriteLine: {
      if (!config_.snoop_line_writebacks) return;
      ++snooped_line_writes_;
      for (u64 off = 0; off < kCacheLineSize; off += kWordSize) {
        u64 v;
        std::memcpy(&v, txn.line.data() + off, kWordSize);
        handle_word_write(txn.paddr + off, v, txn.timestamp,
                          /*from_line=*/true, txn.trace_seq);
      }
      return;
    }
    case sim::BusOp::kReadWord:
    case sim::BusOp::kReadLine:
      return;  // the snooper captures writes only (§6.3)
  }
}

void MemoryBusMonitor::handle_word_write(PhysAddr pa, u64 value, Cycles t,
                                         bool from_line, u64 cause_seq) {
  const u64 bitmap_len = bitmap_bytes();
  // A write to the bitmap itself keeps the bitmap cache coherent
  // (write-update, §6.3) and is not a monitored event.
  if (ranges_overlap(pa, kWordSize, config_.bitmap_base, bitmap_len)) {
    bitmap_cache_.observe_write(word_align_down(pa), value);
    return;
  }
  if (!ranges_overlap(pa, 1, config_.watch_base, config_.watch_size)) return;
  if (!from_line) {
    ++snooped_word_writes_;
    obs_word_writes_.add();
  }

  // Bitmap translator: locate the monitoring bit.
  const u64 bit = bit_index_for(pa, config_.watch_base);
  const PhysAddr word_addr = bitmap_word_addr(bit, config_.bitmap_base);

  const BitmapCache::LookupResult lr = bitmap_cache_.lookup(word_addr);
  if (lr.hit) {
    obs_cache_hits_.add();
  } else {
    obs_cache_misses_.add();
  }
  const Cycles service = machine_.timing().mbm_event_process +
                         (lr.hit ? 0 : machine_.timing().mbm_bitmap_fetch);
  obs_service_cycles_.record_cycles(service);
  fifo_service_cycles_ += service;
  ++fifo_service_count_;
  const WriteFifo::Offer offer = fifo_.offer(CapturedWrite{pa, value, t}, t, service);
  // High-water marks *offered* occupancy, before the drop check: a
  // rejected offer means the FIFO sat at full depth, which is exactly
  // the peak the gauge exists to record (the burst-overflow regression
  // test pins this — the gauge must reach fifo_depth under overflow).
  obs_fifo_high_water_.set_max(fifo_.occupancy());
  if (!offer.accepted) {
    obs_fifo_drops_.add();
    return;  // capture lost: the FIFO overflowed under burst
  }
  fifo_wait_cycles_ += offer.wait;
  // Flight recorder: the FIFO enqueue links back to the bus write that the
  // snooper captured.  a/b carry the modeled (hardware-concurrent) queue
  // wait and translator service cycles — they do not advance the CPU clock,
  // so the event shares the bus-write timestamp.
  const u64 fifo_seq = machine_.trace().record_caused(
      t, sim::TraceKind::kMbmFifo, cause_seq, offer.wait, offer.service);

  u64 word = lr.value;
  if (!lr.hit) {
    // Read-allocate fetch of the bitmap word through the MBM's own memory
    // port (does not charge CPU cycles; the MBM runs concurrently).
    word = machine_.phys().read64(word_addr);
    bitmap_cache_.fill(word_addr, word);
    ++bitmap_fetches_;
    obs_fetches_.add();
  }

  // Decision unit.
  if ((word >> bit_position(bit)) & 1) {
    ++detections_;
    obs_detections_.add();
    const u64 detect_seq = machine_.trace().record_caused(
        t, sim::TraceKind::kMbmDetect, fifo_seq, pa, value);
    MonitorEvent mev{pa, value};
    mev.trace_seq = detect_seq;
    mev.at = t;
    if (ring_.push(mev)) {
      ++irqs_raised_;
      obs_irqs_.add();
      // The IRQ (and everything its handler does on this synchronous path)
      // is causally downstream of the detection.
      sim::Trace::CauseScope irq_cause(machine_.trace(), detect_seq);
      machine_.raise_irq(config_.irq_line);
    }
  }
}

MbmStats MemoryBusMonitor::stats() const {
  MbmStats s;
  s.snooped_word_writes = snooped_word_writes_;
  s.snooped_line_writes = snooped_line_writes_;
  s.fifo_drops = fifo_.drops();
  s.fifo_wait_cycles = fifo_wait_cycles_;
  s.fifo_service_cycles = fifo_service_cycles_;
  s.bitmap_cache_hits = bitmap_cache_.hits();
  s.bitmap_cache_misses = bitmap_cache_.misses();
  s.bitmap_fetches = bitmap_fetches_;
  s.detections = detections_;
  s.ring_overflow_drops = ring_.overflow_drops();
  s.irqs_raised = irqs_raised_;
  return s;
}

void MemoryBusMonitor::reset_stats() {
  snooped_word_writes_ = 0;
  snooped_line_writes_ = 0;
  bitmap_fetches_ = 0;
  detections_ = 0;
  irqs_raised_ = 0;
  fifo_wait_cycles_ = 0;
  fifo_service_cycles_ = 0;
  fifo_service_count_ = 0;
  fifo_.reset();
}

}  // namespace hn::mbm
