// The Memory Bus Monitor (MBM), top level — Figure 5's micro-architecture:
//
//   system bus ──► [bus traffic snooper] ──► [FIFO] ──► [bitmap translator]
//                                                     │        │
//                                                     ▼        ▼
//                                             [bitmap cache] [decision unit]
//                                                                 │
//                                               ring buffer ◄─────┤
//                                               IRQ to CPU  ◄─────┘
//
// The MBM is a passive bus agent: it observes only traffic that actually
// reaches the memory bus (hence Hypersec's non-cacheable mapping of
// monitored pages) and has no visibility into CPU-internal state (the
// semantic gap that Hypersec closes for it, §2/§5.3).
#pragma once

#include "common/timing.h"
#include "common/types.h"
#include "mbm/bitmap_cache.h"
#include "mbm/bitmap_math.h"
#include "mbm/event_ring.h"
#include "mbm/write_fifo.h"
#include "sim/bus.h"
#include "sim/irq.h"
#include "sim/machine.h"

namespace hn::mbm {

struct MbmConfig {
  /// Physical window the bitmap covers (normally all of normal DRAM).
  PhysAddr watch_base = 0;
  u64 watch_size = 0;
  /// Bitmap location (secure space); needs bitmap_bytes_for(watch_size).
  PhysAddr bitmap_base = 0;
  /// Event ring buffer location (secure space) and capacity.
  PhysAddr ring_base = 0;
  u64 ring_entries = 4096;
  unsigned fifo_depth = 64;
  unsigned bitmap_cache_entries = 16;
  bool bitmap_cache_enabled = true;
  /// Conservative mode: also scan dirty-line write-backs word by word.
  /// Off by default, as in the paper (monitored pages are non-cacheable,
  /// so all relevant writes arrive as word transactions).
  bool snoop_line_writebacks = false;
  unsigned irq_line = sim::kIrqMbm;
};

struct MbmStats {
  u64 snooped_word_writes = 0;   // word writes inside the watch window
  u64 snooped_line_writes = 0;   // line write-backs scanned (if enabled)
  u64 fifo_drops = 0;
  u64 fifo_wait_cycles = 0;      // modeled queue wait of accepted captures
  u64 fifo_service_cycles = 0;   // modeled translator service, all captures
  u64 bitmap_cache_hits = 0;
  u64 bitmap_cache_misses = 0;
  u64 bitmap_fetches = 0;        // main-memory bitmap reads
  u64 detections = 0;            // writes whose bitmap bit was set
  u64 ring_overflow_drops = 0;
  u64 irqs_raised = 0;
};

class MemoryBusMonitor final : public sim::BusSnooper {
 public:
  MemoryBusMonitor(sim::Machine& machine, const MbmConfig& config);
  ~MemoryBusMonitor() override;

  MemoryBusMonitor(const MemoryBusMonitor&) = delete;
  MemoryBusMonitor& operator=(const MemoryBusMonitor&) = delete;

  void on_transaction(const sim::BusTransaction& txn) override;

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] MbmStats stats() const;
  void reset_stats();

  EventRing& ring() { return ring_; }
  BitmapCache& bitmap_cache() { return bitmap_cache_; }
  WriteFifo& fifo() { return fifo_; }
  [[nodiscard]] const MbmConfig& config() const { return config_; }
  [[nodiscard]] u64 bitmap_bytes() const {
    return bitmap_bytes_for(config_.watch_size);
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(enabled_);
    w.put_u64(snooped_word_writes_);
    w.put_u64(snooped_line_writes_);
    w.put_u64(bitmap_fetches_);
    w.put_u64(detections_);
    w.put_u64(irqs_raised_);
    w.put_u64(fifo_wait_cycles_);
    w.put_u64(fifo_service_cycles_);
    w.put_u64(fifo_service_count_);
    fifo_.save_state(w);
    bitmap_cache_.save_state(w);
    ring_.save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("mbm");
    enabled_ = r.get_bool();
    snooped_word_writes_ = r.get_u64();
    snooped_line_writes_ = r.get_u64();
    bitmap_fetches_ = r.get_u64();
    detections_ = r.get_u64();
    irqs_raised_ = r.get_u64();
    fifo_wait_cycles_ = r.get_u64();
    fifo_service_cycles_ = r.get_u64();
    fifo_service_count_ = r.get_u64();
    fifo_.restore_state(r);
    bitmap_cache_.restore_state(r);
    ring_.restore_state(r);
  }

 private:
  void handle_word_write(PhysAddr pa, u64 value, Cycles t, bool from_line,
                         u64 cause_seq);

  sim::Machine& machine_;
  MbmConfig config_;
  WriteFifo fifo_;
  BitmapCache bitmap_cache_;
  EventRing ring_;
  bool enabled_ = true;
  u64 snooped_word_writes_ = 0;
  u64 snooped_line_writes_ = 0;
  u64 bitmap_fetches_ = 0;
  u64 detections_ = 0;
  u64 irqs_raised_ = 0;
  // Raw accumulators backing the time-series tracks (always live, unlike
  // the registry handles below, so sampling works with metrics off too).
  u64 fifo_wait_cycles_ = 0;
  u64 fifo_service_cycles_ = 0;
  u64 fifo_service_count_ = 0;
  // Observability handles (inert unless the machine's registry is enabled).
  obs::Counter obs_word_writes_;
  obs::Counter obs_fifo_drops_;
  obs::Gauge obs_fifo_high_water_;
  obs::Counter obs_cache_hits_;
  obs::Counter obs_cache_misses_;
  obs::Counter obs_fetches_;
  obs::Counter obs_detections_;
  obs::Counter obs_irqs_;
  obs::Histogram obs_service_cycles_;
};

}  // namespace hn::mbm
