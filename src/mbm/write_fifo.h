// The FIFO between the bus traffic snooper and the bitmap translator
// (Fig. 5).  The MBM runs concurrently with the CPU, so this models
// *occupancy over time*: entries drain at the translator's processing rate;
// when a burst outpaces the drain, captures are dropped and counted — the
// sizing trade-off bench_ablation_mbm_sizing sweeps.
#pragma once

#include <algorithm>
#include <deque>

#include "common/types.h"
#include "sim/snapshot.h"

namespace hn::mbm {

struct CapturedWrite {
  PhysAddr paddr = 0;
  u64 value = 0;
  Cycles captured_at = 0;
};

class WriteFifo {
 public:
  explicit WriteFifo(unsigned depth) : depth_(depth) {}

  /// Outcome of one offer().  `wait` and `service` describe the modeled
  /// (hardware-concurrent) FIFO residency: the capture sits queued for
  /// `wait` cycles behind earlier entries, then the translator spends
  /// `service` cycles on it.  The flight recorder stamps both into the
  /// kMbmFifo trace event for the detection-latency attribution report.
  struct Offer {
    bool accepted = false;
    Cycles wait = 0;     // queueing delay behind earlier captures
    Cycles service = 0;  // translator processing time
  };

  /// Offer a capture at bus time `now`; `service_time` is how long the
  /// translator will spend on it.  Rejects (and counts a drop) when the
  /// FIFO is full at `now`.
  Offer offer(const CapturedWrite& /*capture*/, Cycles now,
              Cycles service_time) {
    drain(now);
    if (queue_.size() >= depth_) {
      ++drops_;
      return Offer{false, 0, service_time};
    }
    const Cycles start = queue_.empty() ? now : std::max(queue_.back(), now);
    queue_.push_back(start + service_time);
    ++accepted_;
    return Offer{true, start - now, service_time};
  }

  /// Remove entries whose processing completed by `now`.
  void drain(Cycles now) {
    while (!queue_.empty() && queue_.front() <= now) queue_.pop_front();
  }

  [[nodiscard]] unsigned occupancy() const {
    return static_cast<unsigned>(queue_.size());
  }
  [[nodiscard]] unsigned depth() const { return depth_; }
  [[nodiscard]] u64 drops() const { return drops_; }
  [[nodiscard]] u64 accepted() const { return accepted_; }

  void reset() {
    queue_.clear();
    drops_ = 0;
    accepted_ = 0;
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(queue_.size());
    for (const Cycles done_at : queue_) w.put_u64(done_at);
    w.put_u64(drops_);
    w.put_u64(accepted_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("mbm fifo");
    const u64 n = r.get_count("queue entry");
    if (r.ok() && n > depth_) {
      r.fail("occupancy " + std::to_string(n) + " exceeds depth " +
             std::to_string(depth_));
      return;
    }
    queue_.clear();
    for (u64 i = 0; r.ok() && i < n; ++i) queue_.push_back(r.get_u64());
    drops_ = r.get_u64();
    accepted_ = r.get_u64();
  }

 private:
  unsigned depth_;
  std::deque<Cycles> queue_;  // completion time of each queued capture
  u64 drops_ = 0;
  u64 accepted_ = 0;
};

}  // namespace hn::mbm
