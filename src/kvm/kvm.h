// KVM-style nested-paging hypervisor — the paper's baseline (§7.1
// "KVM-guest", and the page-granularity monitoring scheme §7.2 estimates).
//
// The guest kernel runs with stage-2 translation enabled: every stage-1
// walk nests through the stage-2 tree (the sim::Mmu models the full
// walk blow-up), guest RAM is mapped lazily on stage-2 faults (VM exits),
// physical IRQs exit to EL2 before being reinjected, and kernel pages can
// be write-protected at stage-2 page granularity for monitoring — each
// write then traps and is emulated by the hypervisor.
//
// Host memory-pressure model (documented substitution, DESIGN.md): with
// probability `recycle_invalidate_permille`/1000, a frame the guest frees
// loses its stage-2 mapping (host-side reclaim / page aging), so reuse
// re-faults.  This reproduces the sustained fork/mmap overhead measured on
// real KVM, which a laziness-only model would lose at steady state.
#pragma once

#include <functional>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "kernel/kernel.h"
#include "sim/machine.h"

namespace hn::kvm {

struct KvmConfig {
  /// Map all guest RAM up-front instead of faulting lazily (ablation).
  bool eager_map = false;
  /// THP-style backing: a cold stage-2 translation fault maps the whole
  /// 2 MiB-aligned group of pages around the faulting IPA (512 pages), as
  /// transparent huge pages do for guest RAM.  Host-pressure recycling
  /// still invalidates single pages (THP splits under reclaim).
  bool thp_backing = true;
  /// Probability (per mille) that a guest-freed frame's stage-2 mapping is
  /// invalidated by the host before reuse.
  u32 recycle_invalidate_permille = 750;
  /// Host reclaim scans at its own pace: invalidations are token-bucket
  /// rate-limited to one per this many guest cycles (burst capacity
  /// `recycle_burst`), so churn-heavy guest phases don't see reclaim
  /// scale linearly with their free rate.
  Cycles recycle_min_interval = 25'000;
  u32 recycle_burst = 40;
  u64 rng_seed = 0x5EED'0001;
};

struct KvmStats {
  u64 s2_faults_serviced = 0;
  u64 pages_mapped = 0;
  u64 recycle_invalidations = 0;
  u64 wp_traps = 0;      // page-granularity monitor hits
  u64 irq_exits = 0;
};

class KvmHypervisor {
 public:
  /// A write to a protected page, reported before emulation.
  using WpHandler = std::function<void(PhysAddr pa, u64 value)>;

  KvmHypervisor(sim::Machine& machine, kernel::Kernel& kernel,
                const KvmConfig& config = {});
  /// Detach every callback that captures `this` (buddy free hook, VM-exit
  /// handlers) so the kernel/machine can safely outlive the hypervisor.
  ~KvmHypervisor();

  KvmHypervisor(const KvmHypervisor&) = delete;
  KvmHypervisor& operator=(const KvmHypervisor&) = delete;

  /// Enable stage-2 translation and install the VM-exit handlers.  Call
  /// before Kernel::boot() (the guest boots inside the VM).
  Status init();

  // --- Page-granularity write-protection monitoring (§7.2 baseline) -------
  Status protect_page(PhysAddr pa);
  Status unprotect_page(PhysAddr pa);
  void set_wp_handler(WpHandler handler) { wp_handler_ = std::move(handler); }
  [[nodiscard]] bool is_protected(PhysAddr pa) const {
    return protected_pages_.contains(page_align_down(pa));
  }

  [[nodiscard]] const KvmStats& stats() const { return stats_; }
  [[nodiscard]] PhysAddr stage2_root() const { return s2_root_; }
  [[nodiscard]] u64 guest_ram_size() const { return guest_ram_size_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // The stage-2 trees live in simulated memory (restored via pages); the
  // RNG state keeps the host-pressure stream identical across a restore.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(rng_.state());
    w.put_u64(s2_root_);
    w.put_u64(s2_pool_next_);
    w.put_u64(guest_ram_size_);
    w.put_u64(protected_pages_.size());
    for (const PhysAddr pa : protected_pages_) w.put_u64(pa);
    w.put_u64(ever_mapped_.size());
    for (const IpaAddr ipa : ever_mapped_) w.put_u64(ipa);
    w.put_f64(recycle_tokens_);
    w.put_u64(recycle_last_refill_);
    w.put_u64(stats_.s2_faults_serviced);
    w.put_u64(stats_.pages_mapped);
    w.put_u64(stats_.recycle_invalidations);
    w.put_u64(stats_.wp_traps);
    w.put_u64(stats_.irq_exits);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("kvm");
    rng_.restore_state(r.get_u64());
    s2_root_ = r.get_u64();
    s2_pool_next_ = r.get_u64();
    guest_ram_size_ = r.get_u64();
    const u64 nprot = r.get_count("protected page");
    protected_pages_.clear();
    // Saved in ascending order (std::set iteration): hinted inserts are
    // O(1), and ever_mapped_ can hold a THP group per fault.
    for (u64 i = 0; r.ok() && i < nprot; ++i) {
      protected_pages_.emplace_hint(protected_pages_.end(), r.get_u64());
    }
    const u64 nmapped = r.get_count("mapped page");
    ever_mapped_.clear();
    for (u64 i = 0; r.ok() && i < nmapped; ++i) {
      ever_mapped_.emplace_hint(ever_mapped_.end(), r.get_u64());
    }
    recycle_tokens_ = r.get_f64();
    recycle_last_refill_ = r.get_u64();
    stats_.s2_faults_serviced = r.get_u64();
    stats_.pages_mapped = r.get_u64();
    stats_.recycle_invalidations = r.get_u64();
    stats_.wp_traps = r.get_u64();
    stats_.irq_exits = r.get_u64();
  }

 private:
  sim::S2FaultAction on_s2_fault(const sim::Fault& fault, bool is_write,
                                 u64 value);
  /// Install or update the identity stage-2 mapping for `ipa`'s page.
  Status s2_map(IpaAddr ipa, bool write_ok);
  Status s2_unmap(IpaAddr ipa);
  PhysAddr alloc_s2_table();

  sim::Machine& machine_;
  kernel::Kernel& kernel_;
  KvmConfig config_;
  SplitMix64 rng_;
  PhysAddr s2_root_ = 0;
  PhysAddr s2_pool_next_ = 0;  // bump allocator over host-reserved memory
  u64 guest_ram_size_ = 0;
  std::set<PhysAddr> protected_pages_;
  std::set<IpaAddr> ever_mapped_;  // pages that have been THP-populated
  double recycle_tokens_ = 0;
  Cycles recycle_last_refill_ = 0;
  WpHandler wp_handler_;
  KvmStats stats_;
};

}  // namespace hn::kvm
