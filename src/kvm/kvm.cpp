#include "kvm/kvm.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "kernel/layout.h"
#include "sim/pagetable.h"
#include "sim/sysregs.h"

namespace hn::kvm {

using sim::SysReg;

KvmHypervisor::KvmHypervisor(sim::Machine& machine, kernel::Kernel& kernel,
                             const KvmConfig& config)
    : machine_(machine), kernel_(kernel), config_(config),
      rng_(config.rng_seed) {}

KvmHypervisor::~KvmHypervisor() {
  machine_.set_guest_mode(false);
  kernel_.buddy().set_free_hook(nullptr);
  machine_.set_s2_fault_handler(nullptr);
  machine_.install_el2_irq_handler(nullptr);
}

PhysAddr KvmHypervisor::alloc_s2_table() {
  // Stage-2 tables live in host-reserved memory (the carve-out at the top
  // of DRAM, which the guest's linear map excludes).
  const PhysAddr pa = s2_pool_next_;
  assert(pa + kPageSize <= machine_.phys().size() &&
         "stage-2 table pool exhausted");
  s2_pool_next_ += kPageSize;
  machine_.phys().zero_range(pa, kPageSize);
  return pa;
}

Status KvmHypervisor::init() {
  assert(s2_root_ == 0 && "KVM already initialised");
  guest_ram_size_ = machine_.secure_base();
  s2_pool_next_ = machine_.secure_base();
  s2_root_ = alloc_s2_table();

  machine_.set_sysreg_raw_all(SysReg::VTTBR_EL2, s2_root_);
  u64 hcr = machine_.sysreg(SysReg::HCR_EL2);
  hcr = with_bit(hcr, sim::kHcrVm, true);   // stage-2 translation on
  hcr = with_bit(hcr, sim::kHcrImo, true);  // physical IRQs exit to EL2
  machine_.set_sysreg_raw_all(SysReg::HCR_EL2, hcr);

  machine_.set_s2_fault_handler(
      [this](const sim::Fault& fault, bool is_write, u64 value) {
        return on_s2_fault(fault, is_write, value);
      });
  machine_.set_guest_mode(true);

  // Physical interrupts take a full world switch before reinjection into
  // the guest (3.10-era KVM/ARM, no VHE).
  machine_.install_el2_irq_handler([this](unsigned line) {
    ++stats_.irq_exits;
    machine_.advance(machine_.timing().vm_exit);
    ++machine_.counters().vm_exits;
    machine_.exceptions().invoke_el1_irq(line);
    machine_.advance(machine_.timing().vm_entry);
  });

  // Host memory-pressure model: some recycled frames lose their stage-2
  // mapping (see header).
  recycle_tokens_ = config_.recycle_burst;
  recycle_last_refill_ = machine_.account().cycles();
  kernel_.buddy().set_free_hook([this](PhysAddr pa, unsigned order) {
    if (config_.recycle_invalidate_permille == 0) return;
    // Refill the reclaim-rate token bucket from elapsed guest time.
    const Cycles now = machine_.account().cycles();
    recycle_tokens_ = std::min<double>(
        config_.recycle_burst,
        recycle_tokens_ + static_cast<double>(now - recycle_last_refill_) /
                              config_.recycle_min_interval);
    recycle_last_refill_ = now;
    for (u64 i = 0; i < (u64{1} << order); ++i) {
      if (recycle_tokens_ < 1.0) break;
      if (rng_.chance(config_.recycle_invalidate_permille, 1000)) {
        if (s2_unmap(pa + i * kPageSize).ok()) {
          ++stats_.recycle_invalidations;
          recycle_tokens_ -= 1.0;
        }
      }
    }
  });

  if (config_.eager_map) {
    for (IpaAddr ipa = 0; ipa < guest_ram_size_; ipa += kPageSize) {
      if (Status s = s2_map(ipa, /*write_ok=*/true); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

Status KvmHypervisor::s2_map(IpaAddr ipa, bool write_ok) {
  PhysAddr table = s2_root_;
  for (unsigned level = 0; level <= 2; ++level) {
    const PhysAddr slot = table + sim::va_index(ipa, level) * 8;
    u64 desc = machine_.phys().read64(slot);
    if (!sim::desc_valid(desc)) {
      const PhysAddr next = alloc_s2_table();
      desc = sim::make_table_desc(next);
      machine_.phys().write64(slot, desc);
    }
    table = sim::desc_out_addr(desc);
  }
  const PhysAddr leaf = table + sim::va_index(ipa, 3) * 8;
  machine_.phys().write64(
      leaf, sim::make_s2_page_desc(page_align_down(ipa),
                                   sim::S2Attrs{true, write_ok}));
  ++stats_.pages_mapped;
  return Status::Ok();
}

Status KvmHypervisor::s2_unmap(IpaAddr ipa) {
  PhysAddr table = s2_root_;
  for (unsigned level = 0; level <= 2; ++level) {
    const u64 desc = machine_.phys().read64(table + sim::va_index(ipa, level) * 8);
    if (!sim::desc_valid(desc)) return Status::NotFound("s2: not mapped");
    table = sim::desc_out_addr(desc);
  }
  const PhysAddr leaf = table + sim::va_index(ipa, 3) * 8;
  if (!sim::desc_valid(machine_.phys().read64(leaf))) {
    return Status::NotFound("s2: not mapped");
  }
  machine_.phys().write64(leaf, 0);
  // The combined TLB entry for the guest VA must go too; the host only
  // knows the IPA, and this model's guest linear map gives its kernel VA.
  machine_.tlb_shootdown_va(kernel::phys_to_virt(page_align_down(ipa)));
  return Status::Ok();
}

sim::S2FaultAction KvmHypervisor::on_s2_fault(const sim::Fault& fault,
                                              bool is_write, u64 value) {
  const IpaAddr page = page_align_down(fault.ipa);
  if (page >= guest_ram_size_) {
    HN_LOG_WARN("kvm", "stage-2 fault outside guest RAM: ipa=%llx",
                static_cast<unsigned long long>(fault.ipa));
    return sim::S2FaultAction::kUnhandled;
  }

  if (fault.type == sim::FaultType::kS2Translation) {
    machine_.advance(machine_.timing().stage2_fault_service);
    ++stats_.s2_faults_serviced;
    if (config_.thp_backing && !ever_mapped_.contains(page)) {
      // Cold fault into THP-backed RAM: populate the whole 2 MiB group.
      const IpaAddr group = page & ~kSectionMask;
      const IpaAddr end = std::min<IpaAddr>(group + kSectionSize,
                                            guest_ram_size_);
      for (IpaAddr p = group; p < end; p += kPageSize) {
        ever_mapped_.insert(p);
        if (!s2_map(p, /*write_ok=*/!is_protected(p)).ok()) {
          return sim::S2FaultAction::kUnhandled;
        }
      }
      return sim::S2FaultAction::kRetry;
    }
    ever_mapped_.insert(page);
    if (!s2_map(page, /*write_ok=*/!is_protected(page)).ok()) {
      return sim::S2FaultAction::kUnhandled;
    }
    return sim::S2FaultAction::kRetry;
  }

  // Stage-2 permission fault on a write.
  if (is_write && is_protected(page)) {
    ++stats_.wp_traps;
    machine_.advance(machine_.timing().stage2_wp_emulate);
    if (wp_handler_) wp_handler_(fault.ipa, value);
    // Emulate the store on the guest's behalf (single-step emulation).
    // Any dirty cached copy — on any core — must be written back *before*
    // the store, or a later eviction would clobber the emulated value.
    machine_.cache_flush_range_all(fault.ipa, 1);
    machine_.phys().write64(word_align_down(fault.ipa), value);
    return sim::S2FaultAction::kEmulated;
  }

  // Stale write-protection (page no longer monitored): upgrade and retry.
  if (is_write) {
    machine_.advance(machine_.timing().stage2_fault_service);
    ++stats_.s2_faults_serviced;
    if (!s2_map(page, /*write_ok=*/true).ok()) {
      return sim::S2FaultAction::kUnhandled;
    }
    machine_.tlb_shootdown_va(fault.va);
    return sim::S2FaultAction::kRetry;
  }
  return sim::S2FaultAction::kUnhandled;
}

Status KvmHypervisor::protect_page(PhysAddr pa) {
  const PhysAddr page = page_align_down(pa);
  if (page >= guest_ram_size_) return Status::Invalid("outside guest RAM");
  protected_pages_.insert(page);
  // Downgrade an existing mapping (if any) and drop stale TLB entries.
  if (s2_unmap(page).ok()) {
    Status s = s2_map(page, /*write_ok=*/false);
    if (!s.ok()) return s;
  }
  machine_.tlb_shootdown_va(kernel::phys_to_virt(page));
  return Status::Ok();
}

Status KvmHypervisor::unprotect_page(PhysAddr pa) {
  const PhysAddr page = page_align_down(pa);
  if (protected_pages_.erase(page) == 0) {
    return Status::NotFound("page was not protected");
  }
  if (s2_unmap(page).ok()) {
    Status s = s2_map(page, /*write_ok=*/true);
    if (!s.ok()) return s;
  }
  machine_.tlb_shootdown_va(kernel::phys_to_virt(page));
  return Status::Ok();
}

}  // namespace hn::kvm
