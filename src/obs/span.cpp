#include "obs/span.h"

#include <cassert>

namespace hn::obs {

u32 SpanTracer::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const u32 id = static_cast<u32>(names_.size());
  NameInfo info;
  info.name = std::string(name);
  const std::string base = "span." + info.name;
  info.count = registry_.counter(base + ".count");
  info.cycles = registry_.counter(base + ".cycles");
  info.self_cycles = registry_.counter(base + ".self_cycles");
  names_.push_back(std::move(info));
  ids_.emplace(names_.back().name, id);
  return id;
}

void SpanTracer::enter(u32 id) {
  assert(id < names_.size());
  Frame f;
  f.id = id;
  f.begin = *now_;
  stack_.push_back(f);
}

void SpanTracer::exit(u32 id) {
  assert(!stack_.empty() && stack_.back().id == id);
  (void)id;
  const Frame f = stack_.back();
  stack_.pop_back();
  const Cycles end = *now_;
  const Cycles total = end - f.begin;
  const Cycles self = total - f.child;
  if (!stack_.empty()) stack_.back().child += total;

  NameInfo& info = names_[f.id];
  info.count.add();
  info.cycles.add(total);
  info.self_cycles.add(self);

  SpanEvent e;
  e.name_id = f.id;
  e.depth = static_cast<u32>(stack_.size());
  e.begin = f.begin;
  e.end = end;
  e.self = self;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == capacity_) {
    events_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

std::vector<SpanEvent> SpanTracer::chronological() const {
  std::vector<SpanEvent> out;
  out.reserve(events_.size());
  for (u64 i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void SpanTracer::clear() {
  stack_.clear();
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

}  // namespace hn::obs
