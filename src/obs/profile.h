// Observability layer, part 4: the self-time profiler (DESIGN.md §14).
//
// A host-wall-clock attribution tool for the fast-path work: fixed
// simulator-phase buckets (boot / step / dispatch / syscall / translate /
// memory / audit / digest / snapshot / other), self-time semantics via an
// explicit scope stack — time spent in a nested scope is charged to the
// nested bucket, not its parent — and a single steady_clock read per
// scope transition.
//
// The profiler measures HOST time, which is nondeterministic by nature,
// so reports never enter functional digests or fingerprints.  They reach
// the user two ways: a rendered table on stderr (`--profile` on
// hypernel_fuzz / hypernel_score / the benches), and `profile.*` counters
// folded into the hn_obs metrics registry on demand (publish()), where
// the ordinary snapshot/merge/export machinery aggregates them across
// campaign cells and `hypernel_trace profile` renders the exported JSON.
//
// Disabled cost: one relaxed bool load and branch per scope — safe to
// leave in the hottest simulator paths.
#pragma once

#include <array>
#include <string>

#include "common/types.h"
#include "obs/metrics.h"

namespace hn::obs {

enum class ProfileBucket : u8 {
  kBoot,       // system construction + kernel boot / snapshot-boot restore
  kStep,       // fuzz-op step bodies outside the finer buckets below
  kDispatch,   // exception/trap/hypercall dispatch
  kSyscall,    // kernel syscall bodies (SVC entry to exit)
  kTranslate,  // MMU translates that miss the inline translation cache
  kMemory,     // bulk data transfer loops
  kAudit,      // EL2 page-table audits
  kDigest,     // run fingerprinting / corpus digest folding
  kSnapshot,   // machine snapshot capture / restore
  kOther,      // anything not inside an explicit scope
  kCount,
};

[[nodiscard]] constexpr const char* profile_bucket_name(ProfileBucket b) {
  switch (b) {
    case ProfileBucket::kBoot: return "boot";
    case ProfileBucket::kStep: return "step";
    case ProfileBucket::kDispatch: return "dispatch";
    case ProfileBucket::kSyscall: return "syscall";
    case ProfileBucket::kTranslate: return "translate";
    case ProfileBucket::kMemory: return "memory";
    case ProfileBucket::kAudit: return "audit";
    case ProfileBucket::kDigest: return "digest";
    case ProfileBucket::kSnapshot: return "snapshot";
    case ProfileBucket::kOther: return "other";
    case ProfileBucket::kCount: break;
  }
  return "?";
}

/// Value-type result: per-bucket self-time and scope entry counts.
/// merge() is a plain sum, so campaign aggregation is associative.
struct ProfileReport {
  static constexpr unsigned kBuckets =
      static_cast<unsigned>(ProfileBucket::kCount);

  std::array<u64, kBuckets> self_ns{};
  std::array<u64, kBuckets> scopes{};

  [[nodiscard]] u64 total_ns() const {
    u64 t = 0;
    for (const u64 ns : self_ns) t += ns;
    return t;
  }
  [[nodiscard]] bool empty() const { return total_ns() == 0; }
  void merge(const ProfileReport& other) {
    for (unsigned b = 0; b < kBuckets; ++b) {
      self_ns[b] += other.self_ns[b];
      scopes[b] += other.scopes[b];
    }
  }
};

/// Monotonic host clock the profiler runs on — exposed so callers can
/// attribute stretches that predate a profiler instance (e.g. system
/// construction, which builds the machine the profiler lives in).
[[nodiscard]] u64 profile_now_ns();

/// Render a report as the standard self-time table (stderr-friendly).
[[nodiscard]] std::string render_profile(const ProfileReport& report);

/// Fold a report into `registry` as `profile.self_ns.<bucket>` /
/// `profile.scopes.<bucket>` counters.  The registry must be enabled for
/// the values to land (the caller owning --profile flips it on).
void publish_profile(const ProfileReport& report, Registry& registry);

class SelfProfiler {
 public:
  /// Enabling (re)starts the clock with an empty stack; disabling freezes
  /// the accumulated report.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// The accumulated report; open scopes are charged up to "now".
  [[nodiscard]] ProfileReport report() const;
  void reset();

  // Scope transitions (prefer the Scope RAII type).  Calling these while
  // disabled is a no-op; depth overflow degrades to attributing nested
  // time to the overflowing bucket (never UB).
  void begin(ProfileBucket bucket);
  void end();

  class Scope {
   public:
    Scope(SelfProfiler& profiler, ProfileBucket bucket)
        : profiler_(profiler), armed_(profiler.enabled_) {
      if (armed_) profiler_.begin(bucket);
    }
    ~Scope() {
      if (armed_) profiler_.end();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SelfProfiler& profiler_;
    // Latched at construction so a mid-scope enable/disable cannot
    // unbalance the stack.
    bool armed_;
  };

 private:
  static constexpr unsigned kMaxDepth = 64;

  [[nodiscard]] static u64 now_ns();
  /// Charge the time since mark_ns_ to the current top-of-stack bucket.
  void settle(u64 now);

  ProfileReport report_;
  std::array<ProfileBucket, kMaxDepth> stack_{};
  unsigned depth_ = 0;  // stack_[depth_-1] is the active bucket
  u64 mark_ns_ = 0;
  bool enabled_ = false;
};

}  // namespace hn::obs
