#include "obs/export.h"

#include <cinttypes>

namespace hn::obs {
namespace {

void append_u64(std::string& out, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out = "{\n  \"metrics\": [";
  for (size_t i = 0; i < snap.entries.size(); ++i) {
    const SnapshotEntry& e = snap.entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"path\": \"" + e.path + "\", \"kind\": \"";
    out += kind_name(e.kind);
    out += "\"";
    if (e.kind == MetricKind::kHistogram) {
      const HistogramData& h = e.hist;
      out += ", \"count\": ";
      append_u64(out, h.total_count);
      out += ", \"weight\": ";
      append_u64(out, h.total_weight);
      if (h.total_count > 0) {
        out += ", \"min\": ";
        append_u64(out, h.min);
        out += ", \"max\": ";
        append_u64(out, h.max);
      }
      out += ", \"buckets\": [";
      bool first = true;
      for (unsigned b = 0; b < HistogramData::kBuckets; ++b) {
        if (h.count[b] == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += "{\"le\": ";
        append_u64(out, HistogramData::bucket_le(b));
        out += ", \"count\": ";
        append_u64(out, h.count[b]);
        out += ", \"weight\": ";
        append_u64(out, h.weight[b]);
        out += "}";
      }
      out += "]}";
    } else {
      out += ", \"value\": ";
      append_u64(out, e.value);
      out += "}";
    }
  }
  out += snap.entries.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_csv(const Snapshot& snap) {
  std::string out = "path,kind,value,count,weight,min,max\n";
  for (const SnapshotEntry& e : snap.entries) {
    out += e.path;
    out += ",";
    out += kind_name(e.kind);
    out += ",";
    if (e.kind == MetricKind::kHistogram) {
      const HistogramData& h = e.hist;
      out += ",";
      append_u64(out, h.total_count);
      out += ",";
      append_u64(out, h.total_weight);
      out += ",";
      append_u64(out, h.total_count > 0 ? h.min : 0);
      out += ",";
      append_u64(out, h.max);
    } else {
      append_u64(out, e.value);
      out += ",,,,";
    }
    out += "\n";
  }
  return out;
}

void write_json(const Snapshot& snap, std::FILE* out) {
  const std::string s = to_json(snap);
  std::fwrite(s.data(), 1, s.size(), out);
}

void write_csv(const Snapshot& snap, std::FILE* out) {
  const std::string s = to_csv(snap);
  std::fwrite(s.data(), 1, s.size(), out);
}

bool write_metrics_file(const Snapshot& snap, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(snap, f);
  } else {
    write_json(snap, f);
  }
  return std::fclose(f) == 0;
}

}  // namespace hn::obs
