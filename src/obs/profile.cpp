#include "obs/profile.h"

#include <chrono>
#include <cstdio>

namespace hn::obs {

u64 profile_now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

u64 SelfProfiler::now_ns() { return profile_now_ns(); }

void SelfProfiler::settle(u64 now) {
  const ProfileBucket top =
      depth_ == 0 ? ProfileBucket::kOther : stack_[depth_ - 1];
  report_.self_ns[static_cast<unsigned>(top)] += now - mark_ns_;
  mark_ns_ = now;
}

void SelfProfiler::set_enabled(bool on) {
  if (on == enabled_) return;
  if (!on) {
    settle(now_ns());  // freeze: charge the open stretch before stopping
  }
  enabled_ = on;
  if (on) {
    depth_ = 0;
    mark_ns_ = now_ns();
  }
}

void SelfProfiler::reset() {
  report_ = ProfileReport{};
  depth_ = 0;
  mark_ns_ = now_ns();
}

ProfileReport SelfProfiler::report() const {
  ProfileReport out = report_;
  if (enabled_) {
    const ProfileBucket top =
        depth_ == 0 ? ProfileBucket::kOther : stack_[depth_ - 1];
    out.self_ns[static_cast<unsigned>(top)] += now_ns() - mark_ns_;
  }
  return out;
}

void SelfProfiler::begin(ProfileBucket bucket) {
  if (!enabled_) return;
  settle(now_ns());
  if (depth_ < kMaxDepth) {
    stack_[depth_] = bucket;
  }
  ++depth_;  // overflow depth still tracked so end() stays balanced
  report_.scopes[static_cast<unsigned>(bucket)] += 1;
}

void SelfProfiler::end() {
  if (!enabled_ || depth_ == 0) return;
  settle(now_ns());
  --depth_;
}

std::string render_profile(const ProfileReport& report) {
  const u64 total = report.total_ns();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %12s %8s %12s\n", "bucket",
                "self_ms", "share", "scopes");
  out += line;
  for (unsigned b = 0; b < ProfileReport::kBuckets; ++b) {
    const u64 ns = report.self_ns[b];
    if (ns == 0 && report.scopes[b] == 0) continue;
    std::snprintf(line, sizeof(line), "%-10s %12.3f %7.1f%% %12llu\n",
                  profile_bucket_name(static_cast<ProfileBucket>(b)),
                  static_cast<double>(ns) / 1e6,
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(ns) /
                                   static_cast<double>(total),
                  static_cast<unsigned long long>(report.scopes[b]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-10s %12.3f %7.1f%%\n", "total",
                static_cast<double>(total) / 1e6, total == 0 ? 0.0 : 100.0);
  out += line;
  return out;
}

void publish_profile(const ProfileReport& report, Registry& registry) {
  for (unsigned b = 0; b < ProfileReport::kBuckets; ++b) {
    const char* name = profile_bucket_name(static_cast<ProfileBucket>(b));
    registry.counter(std::string("profile.self_ns.") + name)
        .add(report.self_ns[b]);
    registry.counter(std::string("profile.scopes.") + name)
        .add(report.scopes[b]);
  }
}

}  // namespace hn::obs
