// Observability layer, part 5: deterministic cycle-bucketed time series
// (DESIGN.md §16).
//
// A TimeSeries turns the registry's "how much, in total" counters into
// "when, and on which core": any metric (or arbitrary u64 probe) can be
// enrolled as a *track*, and every `interval` simulated cycles the layer
// emits one sample row holding all track values.  Samples are keyed on
// simulated cycles only — never host time, thread ids, or job counts —
// so two runs of the same simulated universe produce byte-identical
// sample streams at any --jobs, any --cores, under temporal decoupling
// and across snapshot-boot (the matrix test pins all four axes).
//
// Two track kinds:
//
//  * kCounter tracks sample the *delta* since the previous sample.
//    Deltas make the stream restart-invariant: zeroing the underlying
//    registry (snapshot restore does) only shifts the cumulative
//    offset, which cancels in the differences.  Summing a counter
//    track over all samples telescopes exactly to the end-of-run total
//    (data() appends a final flush row for the partial tail window).
//
//  * kLevel tracks sample the probe value as-is (FIFO occupancy,
//    runqueue depth): architectural state that snapshots restore.
//
// Sampling is poll-driven, not callback-driven: the machine calls
// poll(now) at its deterministic observation points and the layer emits
// one row per interval boundary crossed, stamped at the *boundary*
// cycle (k * interval), not at the poll cycle.  Boundaries are absolute
// (multiples of the interval since cycle 0), so re-arming at the same
// simulated cycle reproduces the same stamps.  Disabled cost is one
// load + branch (armed()).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace hn::obs {

/// Default sampling interval for `--sample-cycles` without an explicit
/// value: 64Ki simulated cycles (~26 µs at 2.5 GHz) — coarse enough to
/// stay cheap, fine enough that a scorecard run spans many windows.
inline constexpr Cycles kDefaultSampleCycles = 64 * 1024;

enum class TrackKind : u8 { kCounter = 0, kLevel = 1 };

[[nodiscard]] constexpr const char* track_kind_name(TrackKind kind) {
  switch (kind) {
    case TrackKind::kCounter: return "counter";
    case TrackKind::kLevel: return "level";
  }
  return "?";
}

struct TimeSeriesTrack {
  std::string name;
  TrackKind kind = TrackKind::kCounter;

  bool operator==(const TimeSeriesTrack&) const = default;
};

/// One sample row: all track values observed at simulated cycle `at`.
struct TimeSeriesSample {
  Cycles at = 0;
  std::vector<u64> values;  // parallel to TimeSeriesData::tracks

  bool operator==(const TimeSeriesSample&) const = default;
};

/// Value-type copy of a sampled stream — what serializes, parses, and
/// renders.  Equal TimeSeriesData serialize byte-identically.
struct TimeSeriesData {
  Cycles interval = 0;
  double cpu_ghz = 0.0;  // for µs rendering; 0 = unknown
  std::vector<TimeSeriesTrack> tracks;
  std::vector<TimeSeriesSample> samples;

  [[nodiscard]] bool empty() const { return samples.empty(); }
  /// Index of the named track, or -1.
  [[nodiscard]] int track_index(std::string_view name) const;
  /// Sum of a counter track over all samples (== end-of-run total thanks
  /// to delta encoding + the flush row), or the last level of a level
  /// track.  0 for unknown names.
  [[nodiscard]] u64 track_total(std::string_view name) const;

  bool operator==(const TimeSeriesData&) const = default;
};

class TimeSeries {
 public:
  using Probe = std::function<u64()>;

  TimeSeries() = default;
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Enroll a track.  Enrollment order is serialization order, so
  /// enroll in deterministic (construction) order only.  Probes must be
  /// pure reads of simulated state.
  void enroll(std::string name, TrackKind kind, Probe probe);
  /// Sugar: registry handles as probes (handles are stable pointer
  /// pairs, safe to copy into the lambda).
  void enroll(std::string name, Counter c) {
    enroll(std::move(name), TrackKind::kCounter, [c] { return c.value(); });
  }
  void enroll(std::string name, Gauge g) {
    enroll(std::move(name), TrackKind::kLevel, [g] { return g.value(); });
  }

  /// Start sampling every `interval` cycles.  Drops accumulated
  /// samples, primes every counter track's baseline from its probe, and
  /// schedules the first sample at the next absolute boundary after
  /// `now` (boundaries are multiples of `interval` since cycle 0).
  /// interval 0 disarms.  With HN_OBS compiled out this is a no-op:
  /// sampling stays disabled.
  void arm(Cycles interval, Cycles now);
  void disarm() { interval_ = 0; }
  /// One load + branch — the hot-path gate.
  [[nodiscard]] bool armed() const { return interval_ != 0; }

  /// The sampling hook: emit one row per interval boundary in
  /// (last, now], each stamped at its boundary cycle.  Callers gate on
  /// armed() first.  `now` regressions (bus-local clocks on core
  /// switches) are harmless: boundaries only ever advance.
  void poll(Cycles now) {
    while (interval_ != 0 && now >= next_at_) {
      sample_at(next_at_);
      next_at_ += interval_;
    }
  }

  /// Drop samples and disarm, keeping enrollment (snapshot restore:
  /// the executor re-arms afterwards).
  void clear_samples();

  /// Remove every track whose name starts with `prefix` — an enrollee's
  /// destructor defends against dangling probes when it dies before the
  /// machine.  Accumulated sample rows drop the matching columns, so
  /// the stream stays self-consistent.  Determinism is unaffected:
  /// identically-configured runs enroll (and unenroll) identically.
  void unenroll_prefix(std::string_view prefix);

  /// Value copy for serialization.  When armed and `now` lies past the
  /// last emitted row, a final flush row stamped `now` captures the
  /// partial tail window, so counter-track sums telescope exactly to
  /// the end-of-run totals.  cpu_ghz is left 0 — the capturing layer
  /// knows the clock.
  [[nodiscard]] TimeSeriesData data(Cycles now) const;

  [[nodiscard]] size_t track_count() const { return tracks_.size(); }
  [[nodiscard]] size_t sample_count() const { return samples_.size(); }

 private:
  void sample_at(Cycles at);

  struct Track {
    std::string name;
    TrackKind kind = TrackKind::kCounter;
    Probe probe;
    u64 prev = 0;  // kCounter: baseline of the delta
  };

  std::vector<Track> tracks_;
  std::vector<TimeSeriesSample> samples_;
  Cycles interval_ = 0;  // 0 = disarmed
  Cycles next_at_ = 0;   // absolute cycle of the next boundary
};

// --- Binary format -----------------------------------------------------------
//
// Standalone "HNTSERIE" blob, also embedded verbatim as the v3 trace
// section (sim/trace_io.h).  Little-endian, version-checked:
//
//   magic "HNTSERIE" (8) | u32 version | u32 reserved | f64 cpu_ghz
//   u64 interval | u64 track_count
//   track_count x { u32 name_len | name bytes | u8 kind }
//   u64 sample_count
//   sample_count x { u64 at | track_count x u64 value }

inline constexpr char kTimeSeriesMagic[8] = {'H', 'N', 'T', 'S',
                                             'E', 'R', 'I', 'E'};
inline constexpr u32 kTimeSeriesFormatVersion = 1;

[[nodiscard]] std::vector<u8> serialize_timeseries(const TimeSeriesData& data);
[[nodiscard]] Status parse_timeseries(const std::vector<u8>& blob,
                                      TimeSeriesData& out);

/// File I/O for --timeseries-out artifacts (raw blob, fopen-based).
[[nodiscard]] bool write_timeseries_file(const std::vector<u8>& blob,
                                         const std::string& path);
[[nodiscard]] bool read_timeseries_file(const std::string& path,
                                        std::vector<u8>& blob);

}  // namespace hn::obs
