// Observability layer, part 1: the hierarchical metrics registry
// (DESIGN.md §10).
//
// A Registry holds named metrics — counters, gauges (high-water on
// merge), and cycle-weighted histograms — addressed by dotted paths that
// mirror the subsystem hierarchy: `sim.mmu.s2_walks`,
// `mbm.fifo.high_water`, `hypersec.hvc.verify_cycles`.  Every simulated
// machine owns one registry; components register handles once at
// construction and bump them from hot paths.
//
// Two contracts shape the design:
//
//  * Zero overhead when disabled.  With -DHN_OBS=OFF the handle
//    operations compile to nothing — the instrumented hot loops are the
//    exact seed code.  With HN_OBS on but the registry runtime-disabled
//    (the default), an operation is one predictable load + branch.
//
//  * Deterministic snapshot/merge.  A Snapshot is a path-sorted value
//    type; merging folds counters by addition, gauges by max and
//    histograms bucket-wise — all commutative and associative over u64,
//    so per-shard registries fold bit-identically under hn_exec at any
//    --jobs count (the parallel campaign test pins this).
//
// Like the rest of the simulation, a Registry belongs to one simulated
// universe and is single-threaded; cross-thread aggregation happens on
// merged Snapshots, never on live registries.
#pragma once

#include <array>
#include <bit>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

#ifndef HN_OBS
#define HN_OBS 1
#endif

namespace hn::obs {

enum class MetricKind : u8 { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Power-of-two bucketed histogram with per-bucket sample *weights* —
/// the cycle-weighted shape: record(value=cycles, weight=cycles) shows
/// where cycles go, not just how often an event fires.  Bucket b holds
/// values v with std::bit_width(v) == b, i.e. [2^(b-1), 2^b - 1]
/// (bucket 0 holds exactly the value 0).
struct HistogramData {
  static constexpr unsigned kBuckets = 65;  // bit_width of a u64 is 0..64

  std::array<u64, kBuckets> count{};
  std::array<u64, kBuckets> weight{};
  u64 total_count = 0;
  u64 total_weight = 0;
  u64 min = ~u64{0};  // ~0 while empty
  u64 max = 0;

  static constexpr unsigned bucket_of(u64 value) {
    return static_cast<unsigned>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket `b`.
  static constexpr u64 bucket_le(unsigned b) {
    return b == 0 ? 0 : (b >= 64 ? ~u64{0} : (u64{1} << b) - 1);
  }

  void record(u64 value, u64 w) {
    const unsigned b = bucket_of(value);
    count[b] += 1;
    weight[b] += w;
    total_count += 1;
    total_weight += w;
    if (value < min) min = value;
    if (value > max) max = value;
  }

  /// Percentile estimate from the power-of-two buckets, upper-bound
  /// semantics: the smallest bucket whose cumulative count reaches
  /// ceil(p/100 * total_count), reported as that bucket's inclusive
  /// upper bound (bucket_le).  The true p-th sample lies at or below the
  /// returned value; resolution is one power of two.  p is clamped to
  /// [0, 100]; an empty histogram reports 0.
  [[nodiscard]] constexpr u64 percentile(unsigned p) const {
    if (total_count == 0) return 0;
    if (p > 100) p = 100;
    // ceil(p/100 * total_count) without overflow for any u64 count.
    const u64 rank =
        total_count / 100 * p + (total_count % 100 * p + 99) / 100;
    const u64 need = rank == 0 ? 1 : rank;  // p == 0 -> first sample
    u64 cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      cum += count[b];
      if (cum >= need) return bucket_le(b);
    }
    return bucket_le(kBuckets - 1);
  }

  /// Commutative fold: bucket-wise sums, range union.
  void merge(const HistogramData& other) {
    for (unsigned b = 0; b < kBuckets; ++b) {
      count[b] += other.count[b];
      weight[b] += other.weight[b];
    }
    total_count += other.total_count;
    total_weight += other.total_weight;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  bool operator==(const HistogramData&) const = default;
};

namespace detail {
struct Metric {
  MetricKind kind = MetricKind::kCounter;
  u64 value = 0;
  std::unique_ptr<HistogramData> hist;  // kind == kHistogram only
};
}  // namespace detail

// --- Handles -----------------------------------------------------------------
//
// A handle is a registration-time binding of (metric slot, registry
// enable flag).  Default-constructed handles are inert.  With HN_OBS off
// the operations are empty inline functions and the members are unused.

class Counter {
 public:
  void add(u64 n = 1) {
#if HN_OBS
    if (slot_ != nullptr && *on_) slot_->value += n;
#else
    (void)n;
#endif
  }
  /// True when an add() would actually record — lets hot paths skip
  /// computing expensive arguments while observability is off.
  [[nodiscard]] bool active() const {
#if HN_OBS
    return slot_ != nullptr && *on_;
#else
    return false;
#endif
  }
  /// Current count (0 for inert handles) — the time-series probe read.
  [[nodiscard]] u64 value() const {
#if HN_OBS
    return slot_ != nullptr ? slot_->value : 0;
#else
    return 0;
#endif
  }

 private:
  friend class Registry;
  detail::Metric* slot_ = nullptr;
  const bool* on_ = nullptr;
};

/// Gauges fold by max on merge, so they are high-water marks across
/// shards; set() overwrites within one registry, set_max() never lowers.
class Gauge {
 public:
  void set(u64 v) {
#if HN_OBS
    if (slot_ != nullptr && *on_) slot_->value = v;
#else
    (void)v;
#endif
  }
  void set_max(u64 v) {
#if HN_OBS
    if (slot_ != nullptr && *on_ && v > slot_->value) slot_->value = v;
#else
    (void)v;
#endif
  }
  /// Current level (0 for inert handles) — the time-series probe read.
  [[nodiscard]] u64 value() const {
#if HN_OBS
    return slot_ != nullptr ? slot_->value : 0;
#else
    return 0;
#endif
  }

 private:
  friend class Registry;
  detail::Metric* slot_ = nullptr;
  const bool* on_ = nullptr;
};

class Histogram {
 public:
  void record(u64 value, u64 w = 1) {
#if HN_OBS
    if (slot_ != nullptr && *on_) slot_->hist->record(value, w);
#else
    (void)value;
    (void)w;
#endif
  }
  /// Cycle-weighted convenience: a sample whose weight is its own value.
  void record_cycles(Cycles c) { record(c, c); }
  /// True when a record() would actually land (see Counter::active()).
  [[nodiscard]] bool active() const {
#if HN_OBS
    return slot_ != nullptr && *on_;
#else
    return false;
#endif
  }
  /// The live bucket data (nullptr for inert handles) — lets the
  /// time-series layer probe total_weight/total_count without a snapshot.
  [[nodiscard]] const HistogramData* data() const {
#if HN_OBS
    return slot_ != nullptr ? slot_->hist.get() : nullptr;
#else
    return nullptr;
#endif
  }

 private:
  friend class Registry;
  detail::Metric* slot_ = nullptr;
  const bool* on_ = nullptr;
};

// --- Snapshot ----------------------------------------------------------------

struct SnapshotEntry {
  std::string path;
  MetricKind kind = MetricKind::kCounter;
  u64 value = 0;       // counter / gauge payload
  HistogramData hist;  // kind == kHistogram only

  bool operator==(const SnapshotEntry&) const = default;
};

/// Path-sorted value copy of a registry.  merge() is the only way state
/// crosses threads: commutative per-entry folds plus a sorted merge-join
/// make the result independent of merge order and shard count.
struct Snapshot {
  std::vector<SnapshotEntry> entries;  // strictly ascending by path

  void merge(const Snapshot& other);

  [[nodiscard]] const SnapshotEntry* find(std::string_view path) const;
  /// Counter/gauge payload, or 0 when absent.
  [[nodiscard]] u64 value(std::string_view path) const;
  /// Sum of counter values at or under `prefix` (path == prefix or
  /// path starting "prefix.") — the hierarchy rollup.
  [[nodiscard]] u64 rollup(std::string_view prefix) const;

  bool operator==(const Snapshot&) const = default;
};

// --- Registry ----------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Re-registering an existing path with the same kind
  /// returns a handle to the same slot; a kind mismatch returns an inert
  /// handle (and the original metric is untouched).
  Counter counter(std::string_view path);
  Gauge gauge(std::string_view path);
  Histogram histogram(std::string_view path);

  /// Runtime switch, off by default: registration always works, but
  /// handle operations only mutate while enabled.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Stable address of the enable flag, for handles and SpanScope.
  [[nodiscard]] const bool* enabled_flag() const { return &enabled_; }

  [[nodiscard]] u64 size() const { return metrics_.size(); }
  [[nodiscard]] Snapshot snapshot() const;
  /// Zero every metric (registrations survive).
  void reset_values();

 private:
  detail::Metric* slot(std::string_view path, MetricKind kind);

  // std::map: node stability keeps handle pointers valid forever, and
  // iteration order is the snapshot's sorted order for free.
  std::map<std::string, detail::Metric, std::less<>> metrics_;
  bool enabled_ = false;
};

}  // namespace hn::obs
