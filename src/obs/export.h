// Observability layer, part 3: snapshot exporters (DESIGN.md §10).
//
// Both formats render a path-sorted Snapshot deterministically — equal
// snapshots produce byte-identical files, so exports can be diffed,
// golden-tested and compared across --jobs counts.  JSON is the tool/CI
// interchange format (`--metrics-out=metrics.json`); CSV is the
// spreadsheet-friendly flat table (`--metrics-out=metrics.csv`).
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace hn::obs {

/// Render `snap` as a JSON document: {"metrics": [{"path": ...}, ...]}.
/// Histograms carry count/weight/min/max plus their non-empty buckets
/// as inclusive upper bounds ("le").
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// Render `snap` as CSV: path,kind,value,count,weight,min,max — one row
/// per metric; histogram rows use the aggregate columns, scalar rows the
/// value column.
[[nodiscard]] std::string to_csv(const Snapshot& snap);

void write_json(const Snapshot& snap, std::FILE* out);
void write_csv(const Snapshot& snap, std::FILE* out);

/// Write `snap` to `path`, picking the format by extension (".csv" is
/// CSV, everything else JSON).  Returns false on I/O failure.
bool write_metrics_file(const Snapshot& snap, const std::string& path);

/// The `--metrics-out=FILE` contract shared by every tool and bench.
inline constexpr const char* kMetricsOutUsage =
    "  --metrics-out=F   write a metrics snapshot to F on exit\n"
    "                    (JSON, or CSV when F ends in .csv)";

}  // namespace hn::obs
