#include "obs/timeseries.h"

#include <cstdio>
#include <cstring>

namespace hn::obs {

// --- TimeSeriesData ----------------------------------------------------------

int TimeSeriesData::track_index(std::string_view name) const {
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

u64 TimeSeriesData::track_total(std::string_view name) const {
  const int idx = track_index(name);
  if (idx < 0) return 0;
  const auto i = static_cast<size_t>(idx);
  if (tracks[i].kind == TrackKind::kLevel) {
    return samples.empty() ? 0 : samples.back().values[i];
  }
  u64 total = 0;
  for (const TimeSeriesSample& s : samples) total += s.values[i];
  return total;
}

// --- TimeSeries --------------------------------------------------------------

void TimeSeries::enroll(std::string name, TrackKind kind, Probe probe) {
  Track t;
  t.name = std::move(name);
  t.kind = kind;
  t.probe = std::move(probe);
  tracks_.push_back(std::move(t));
}

void TimeSeries::arm(Cycles interval, Cycles now) {
#if HN_OBS
  samples_.clear();
  interval_ = interval;
  if (interval == 0) return;
  for (Track& t : tracks_) t.prev = t.probe();
  // First boundary strictly after `now`: absolute multiples of the
  // interval, so identical arm cycles give identical stamps.
  next_at_ = (now / interval + 1) * interval;
#else
  (void)interval;
  (void)now;
#endif
}

void TimeSeries::clear_samples() {
  samples_.clear();
  interval_ = 0;
}

void TimeSeries::unenroll_prefix(std::string_view prefix) {
  std::vector<size_t> keep;
  keep.reserve(tracks_.size());
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].name.compare(0, prefix.size(), prefix) != 0) {
      keep.push_back(i);
    }
  }
  if (keep.size() == tracks_.size()) return;
  std::vector<Track> tracks;
  tracks.reserve(keep.size());
  for (const size_t i : keep) tracks.push_back(std::move(tracks_[i]));
  tracks_ = std::move(tracks);
  for (TimeSeriesSample& row : samples_) {
    std::vector<u64> values;
    values.reserve(keep.size());
    for (const size_t i : keep) values.push_back(row.values[i]);
    row.values = std::move(values);
  }
}

void TimeSeries::sample_at(Cycles at) {
  TimeSeriesSample row;
  row.at = at;
  row.values.reserve(tracks_.size());
  for (Track& t : tracks_) {
    const u64 cur = t.probe();
    if (t.kind == TrackKind::kCounter) {
      row.values.push_back(cur - t.prev);
      t.prev = cur;
    } else {
      row.values.push_back(cur);
    }
  }
  samples_.push_back(std::move(row));
}

TimeSeriesData TimeSeries::data(Cycles now) const {
  TimeSeriesData out;
  out.interval = interval_;
  out.tracks.reserve(tracks_.size());
  for (const Track& t : tracks_) out.tracks.push_back({t.name, t.kind});
  out.samples = samples_;
  // Flush row: the partial window since the last boundary, so counter
  // sums telescope to end-of-run totals.  prev stays untouched (const).
  if (armed() && (samples_.empty() || samples_.back().at < now)) {
    TimeSeriesSample row;
    row.at = now;
    row.values.reserve(tracks_.size());
    for (const Track& t : tracks_) {
      const u64 cur = t.probe();
      row.values.push_back(t.kind == TrackKind::kCounter ? cur - t.prev : cur);
    }
    out.samples.push_back(std::move(row));
  }
  return out;
}

// --- Binary format -----------------------------------------------------------

namespace {

void put_u8(std::vector<u8>& out, u8 v) { out.push_back(v); }

void put_u32(std::vector<u8>& out, u32 v) {
  for (unsigned i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 v) {
  for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_f64(std::vector<u8>& out, double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader (mirrors trace_io.cpp's).
class Reader {
 public:
  explicit Reader(const std::vector<u8>& blob) : blob_(blob) {}

  bool u8_(u8& v) {
    if (pos_ + 1 > blob_.size()) return false;
    v = blob_[pos_++];
    return true;
  }
  bool u32_(u32& v) {
    if (pos_ + 4 > blob_.size()) return false;
    v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= u32{blob_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64_(u64& v) {
    if (pos_ + 8 > blob_.size()) return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= u64{blob_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return true;
  }
  bool f64_(double& v) {
    u64 bits;
    if (!u64_(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
  bool bytes(void* dst, size_t n) {
    if (pos_ + n > blob_.size()) return false;
    std::memcpy(dst, blob_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] size_t remaining() const { return blob_.size() - pos_; }

 private:
  const std::vector<u8>& blob_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<u8> serialize_timeseries(const TimeSeriesData& data) {
  std::vector<u8> out;
  out.reserve(64 + data.samples.size() * (data.tracks.size() + 1) * 8);
  out.insert(out.end(), kTimeSeriesMagic, kTimeSeriesMagic + 8);
  put_u32(out, kTimeSeriesFormatVersion);
  put_u32(out, 0);  // reserved
  put_f64(out, data.cpu_ghz);
  put_u64(out, data.interval);
  put_u64(out, data.tracks.size());
  for (const TimeSeriesTrack& t : data.tracks) {
    put_u32(out, static_cast<u32>(t.name.size()));
    out.insert(out.end(), t.name.begin(), t.name.end());
    put_u8(out, static_cast<u8>(t.kind));
  }
  put_u64(out, data.samples.size());
  for (const TimeSeriesSample& s : data.samples) {
    put_u64(out, s.at);
    for (const u64 v : s.values) put_u64(out, v);
  }
  return out;
}

Status parse_timeseries(const std::vector<u8>& blob, TimeSeriesData& out) {
  out = TimeSeriesData{};
  Reader r(blob);
  char magic[8];
  if (!r.bytes(magic, 8) || std::memcmp(magic, kTimeSeriesMagic, 8) != 0) {
    return Status::Invalid("timeseries: bad magic (not an HNTSERIE blob)");
  }
  u32 version = 0;
  u32 reserved = 0;
  if (!r.u32_(version) || !r.u32_(reserved)) {
    return Status::Invalid("timeseries: truncated header");
  }
  if (version != kTimeSeriesFormatVersion) {
    return Status::Invalid("timeseries: unsupported format version " +
                           std::to_string(version));
  }
  u64 track_count = 0;
  if (!r.f64_(out.cpu_ghz) || !r.u64_(out.interval) || !r.u64_(track_count)) {
    return Status::Invalid("timeseries: truncated header");
  }
  if (track_count > (1u << 20)) {
    return Status::Invalid("timeseries: implausible track count");
  }
  out.tracks.reserve(track_count);
  for (u64 i = 0; i < track_count; ++i) {
    u32 name_len = 0;
    if (!r.u32_(name_len) || name_len > r.remaining()) {
      return Status::Invalid("timeseries: truncated track table");
    }
    TimeSeriesTrack t;
    t.name.resize(name_len);
    u8 kind = 0;
    if (!r.bytes(t.name.data(), name_len) || !r.u8_(kind)) {
      return Status::Invalid("timeseries: truncated track table");
    }
    if (kind > static_cast<u8>(TrackKind::kLevel)) {
      return Status::Invalid("timeseries: unknown track kind");
    }
    t.kind = static_cast<TrackKind>(kind);
    out.tracks.push_back(std::move(t));
  }
  u64 sample_count = 0;
  if (!r.u64_(sample_count)) {
    return Status::Invalid("timeseries: truncated sample table");
  }
  const u64 row_bytes = (track_count + 1) * 8;
  if (sample_count > r.remaining() / (row_bytes == 0 ? 1 : row_bytes)) {
    return Status::Invalid("timeseries: sample table overruns blob");
  }
  out.samples.reserve(sample_count);
  for (u64 i = 0; i < sample_count; ++i) {
    TimeSeriesSample s;
    if (!r.u64_(s.at)) {
      return Status::Invalid("timeseries: truncated sample table");
    }
    s.values.resize(track_count);
    for (u64 j = 0; j < track_count; ++j) {
      if (!r.u64_(s.values[j])) {
        return Status::Invalid("timeseries: truncated sample table");
      }
    }
    out.samples.push_back(std::move(s));
  }
  if (r.remaining() != 0) {
    return Status::Invalid("timeseries: trailing bytes after sample table");
  }
  return Status::Ok();
}

bool write_timeseries_file(const std::vector<u8>& blob,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      blob.empty() || std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  return std::fclose(f) == 0 && ok;
}

bool read_timeseries_file(const std::string& path, std::vector<u8>& blob) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  blob.clear();
  u8 buf[4096];
  for (size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hn::obs
