#include "obs/metrics.h"

#include <algorithm>

namespace hn::obs {

detail::Metric* Registry::slot(std::string_view path, MetricKind kind) {
  auto it = metrics_.find(path);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(path), detail::Metric{}).first;
    it->second.kind = kind;
    if (kind == MetricKind::kHistogram) {
      it->second.hist = std::make_unique<HistogramData>();
    }
  } else if (it->second.kind != kind) {
    return nullptr;  // kind mismatch: caller gets an inert handle
  }
  return &it->second;
}

Counter Registry::counter(std::string_view path) {
  Counter c;
#if HN_OBS
  c.slot_ = slot(path, MetricKind::kCounter);
  c.on_ = &enabled_;
#else
  (void)path;
#endif
  return c;
}

Gauge Registry::gauge(std::string_view path) {
  Gauge g;
#if HN_OBS
  g.slot_ = slot(path, MetricKind::kGauge);
  g.on_ = &enabled_;
#else
  (void)path;
#endif
  return g;
}

Histogram Registry::histogram(std::string_view path) {
  Histogram h;
#if HN_OBS
  h.slot_ = slot(path, MetricKind::kHistogram);
  h.on_ = &enabled_;
#else
  (void)path;
#endif
  return h;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [path, metric] : metrics_) {
    SnapshotEntry e;
    e.path = path;
    e.kind = metric.kind;
    e.value = metric.value;
    if (metric.hist != nullptr) e.hist = *metric.hist;
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void Registry::reset_values() {
  for (auto& [path, metric] : metrics_) {
    metric.value = 0;
    if (metric.hist != nullptr) *metric.hist = HistogramData{};
  }
}

void Snapshot::merge(const Snapshot& other) {
  std::vector<SnapshotEntry> merged;
  merged.reserve(entries.size() + other.entries.size());
  size_t a = 0;
  size_t b = 0;
  while (a < entries.size() || b < other.entries.size()) {
    if (b >= other.entries.size() ||
        (a < entries.size() && entries[a].path < other.entries[b].path)) {
      merged.push_back(std::move(entries[a++]));
      continue;
    }
    if (a >= entries.size() || other.entries[b].path < entries[a].path) {
      merged.push_back(other.entries[b++]);
      continue;
    }
    // Same path: fold by kind.  A kind conflict keeps the left entry
    // untouched (registries built by the same code never conflict).
    SnapshotEntry e = std::move(entries[a++]);
    const SnapshotEntry& o = other.entries[b++];
    if (e.kind == o.kind) {
      switch (e.kind) {
        case MetricKind::kCounter: e.value += o.value; break;
        case MetricKind::kGauge: e.value = std::max(e.value, o.value); break;
        case MetricKind::kHistogram: e.hist.merge(o.hist); break;
      }
    }
    merged.push_back(std::move(e));
  }
  entries = std::move(merged);
}

const SnapshotEntry* Snapshot::find(std::string_view path) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), path,
      [](const SnapshotEntry& e, std::string_view p) { return e.path < p; });
  if (it == entries.end() || it->path != path) return nullptr;
  return &*it;
}

u64 Snapshot::value(std::string_view path) const {
  const SnapshotEntry* e = find(path);
  return e == nullptr ? 0 : e->value;
}

u64 Snapshot::rollup(std::string_view prefix) const {
  u64 sum = 0;
  for (const SnapshotEntry& e : entries) {
    if (e.kind != MetricKind::kCounter) continue;
    if (e.path == prefix ||
        (e.path.size() > prefix.size() && e.path[prefix.size()] == '.' &&
         e.path.compare(0, prefix.size(), prefix) == 0)) {
      sum += e.value;
    }
  }
  return sum;
}

}  // namespace hn::obs
