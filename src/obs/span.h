// Observability layer, part 2: scoped span tracing with cycle
// attribution (DESIGN.md §10).
//
// A SpanTracer owns a stack of open spans and a bounded ring of completed
// ones (the sim/trace.h idiom: capacity bounds memory, oldest events are
// dropped and counted).  Time is *simulated* cycles read from the
// machine's CycleAccount, so spans are deterministic and diffable, and
// every span knows both its total duration and its self time (total minus
// enclosed child spans) — the per-subsystem attribution the metrics
// registry aggregates:
//
//   span.<name>.count        completed spans
//   span.<name>.cycles       total cycles (children included)
//   span.<name>.self_cycles  cycles net of child spans
//
// Enter/exit go through SpanScope, an RAII guard that is a no-op when
// HN_OBS is compiled out or the registry is runtime-disabled.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace hn::obs {

struct SpanEvent {
  u32 name_id = 0;
  u32 depth = 0;  // nesting depth at entry (0 = top level)
  Cycles begin = 0;
  Cycles end = 0;
  Cycles self = 0;  // end - begin minus child span time
};

class SpanTracer {
 public:
  /// `ring_capacity` bounds the completed-span ring (oldest dropped).
  explicit SpanTracer(Registry& registry, u64 ring_capacity = u64{1} << 12)
      : registry_(registry), capacity_(ring_capacity) {}

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Simulated-cycle clock the spans read; unbound tracers stay inert.
  void bind_clock(const Cycles* now) { now_ = now; }

  /// Intern `name`, creating its three registry metrics on first use.
  /// Ids are dense and stable; call once at component construction.
  u32 intern(std::string_view name);
  [[nodiscard]] const std::string& name(u32 id) const {
    return names_[id].name;
  }
  /// Number of interned names (ids are [0, name_count)); used by the
  /// flight-recorder serializer to emit the span name table.
  [[nodiscard]] u32 name_count() const {
    return static_cast<u32>(names_.size());
  }

  [[nodiscard]] bool enabled() const {
    return now_ != nullptr && registry_.enabled();
  }

  void enter(u32 id);
  void exit(u32 id);

  [[nodiscard]] unsigned open_depth() const {
    return static_cast<unsigned>(stack_.size());
  }
  [[nodiscard]] u64 size() const { return events_.size(); }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  /// Completed spans in completion order (accounting for ring wrap).
  [[nodiscard]] std::vector<SpanEvent> chronological() const;
  void clear();

 private:
  struct NameInfo {
    std::string name;
    Counter count;
    Counter cycles;
    Counter self_cycles;
  };
  struct Frame {
    u32 id = 0;
    Cycles begin = 0;
    Cycles child = 0;  // total cycles of completed direct children
  };

  Registry& registry_;
  const Cycles* now_ = nullptr;
  std::vector<NameInfo> names_;
  std::map<std::string, u32, std::less<>> ids_;
  std::vector<Frame> stack_;
  u64 capacity_;
  std::vector<SpanEvent> events_;
  u64 head_ = 0;
  u64 dropped_ = 0;
};

/// RAII span guard.  Capture the tracer's enabled() verdict at entry so
/// a mid-span runtime toggle cannot unbalance the nesting stack.
class SpanScope {
 public:
  SpanScope(SpanTracer& tracer, u32 id) {
#if HN_OBS
    if (tracer.enabled()) {
      tracer_ = &tracer;
      id_ = id;
      tracer.enter(id);
    }
#else
    (void)tracer;
    (void)id;
#endif
  }
  ~SpanScope() {
#if HN_OBS
    if (tracer_ != nullptr) tracer_->exit(id_);
#endif
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
#if HN_OBS
  SpanTracer* tracer_ = nullptr;
  u32 id_ = 0;
#endif
};

}  // namespace hn::obs
