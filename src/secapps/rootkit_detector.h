// A ready-made rootkit detector built on the object-integrity monitor:
// word-granularity watch over cred identity/capability fields and dentry
// inode/ops words, with convenience queries for the two classic attacks
// the paper's footnote 2 describes (privilege escalation via cred, and
// file subversion via dentry).
#pragma once

#include "secapps/object_monitor.h"

namespace hn::secapps {

class RootkitDetector : public ObjectIntegrityMonitor {
 public:
  explicit RootkitDetector(hypernel::System& system, u64 sid = 2)
      : ObjectIntegrityMonitor(system, Granularity::kSensitiveFields,
                               /*watch_cred=*/true, /*watch_dentry=*/true,
                               sid) {}

  [[nodiscard]] const char* name() const override { return "rootkit-detector"; }

  [[nodiscard]] bool detected_cred_escalation() const {
    return has_alert(AlertKind::kCredIdLowered) ||
           has_alert(AlertKind::kCredCapEscalated);
  }
  [[nodiscard]] bool detected_dentry_tampering() const {
    return has_alert(AlertKind::kDentryOpsHooked) ||
           has_alert(AlertKind::kDentryInodeHijacked);
  }
};

}  // namespace hn::secapps
