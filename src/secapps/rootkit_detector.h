// A ready-made rootkit detector built on the object-integrity monitor:
// word-granularity watch over cred identity/capability fields and dentry
// inode/ops words, with convenience queries for the two classic attacks
// the paper's footnote 2 describes (privilege escalation via cred, and
// file subversion via dentry).
#pragma once

#include "secapps/object_monitor.h"

namespace hn::secapps {

class RootkitDetector : public ObjectIntegrityMonitor {
 public:
  explicit RootkitDetector(hypernel::System& system, u64 sid = 2)
      : ObjectIntegrityMonitor(system, Granularity::kSensitiveFields,
                               /*watch_cred=*/true, /*watch_dentry=*/true,
                               sid) {}

  [[nodiscard]] const char* name() const override { return "rootkit-detector"; }

  [[nodiscard]] bool detected_cred_escalation() const {
    return has_alert_containing("cred") || has_alert_containing("capability");
  }
  [[nodiscard]] bool detected_dentry_tampering() const {
    return has_alert_containing("dentry");
  }

 private:
  [[nodiscard]] bool has_alert_containing(const char* needle) const {
    for (const Alert& a : alerts()) {
      if (a.reason.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

}  // namespace hn::secapps
