#include "secapps/invariant_checker.h"

#include <cassert>

#include "common/hvc_abi.h"
#include "common/log.h"
#include "kernel/layout.h"

namespace hn::secapps {

InvariantChecker::InvariantChecker(hypernel::System& system, u64 sid)
    : system_(system), sid_(sid) {}

Status InvariantChecker::install() {
  assert(!installed_);
  if (Status s = system_.register_security_app(*this); !s.ok()) return s;
  hypersec::Hypersec* hs = system_.hypersec();
  hs->set_pt_observer(this);
  // Mirror the current inventory: the kernel tree sealed at init plus any
  // user trees already allocated.  From here on the observer keeps the
  // mirror exact across kPtAlloc/kPtFree.
  for (const auto& [pa, level] : hs->verifier().pt_pages()) {
    (void)level;
    register_page(pa);
  }
  installed_ = true;
  return Status::Ok();
}

void InvariantChecker::register_page(PhysAddr pa) {
  // Table pages live in the linear map, so registration goes through the
  // same §5.3 hypercall path as any other monitored kernel region.
  const u64 rc = system_.machine().hvc(
      hvc::kMonRegister, {sid_, kernel::phys_to_virt(pa), kPageSize});
  if (rc != hvc::kOk) {
    HN_LOG_WARN("secapp", "PT page registration failed (pa=%llx rc=%llu)",
                static_cast<unsigned long long>(pa),
                static_cast<unsigned long long>(rc));
    return;
  }
  pages_.insert(pa);
  ++stats_.pages_registered;
}

void InvariantChecker::on_pt_alloc(PhysAddr pa, unsigned level) {
  (void)level;
  register_page(pa);
}

void InvariantChecker::on_pt_free(PhysAddr pa) {
  if (pages_.erase(pa) == 0) return;
  system_.machine().hvc(hvc::kMonUnregister,
                        {sid_, kernel::phys_to_virt(pa), kPageSize});
  ++stats_.pages_unregistered;
}

hypersec::AppVerdict InvariantChecker::on_write_event(
    const mbm::MonitorEvent& event, const hypersec::RegionInfo& region) {
  (void)region;
  // EL2 verification work: inventory lookup plus the audit walk below.
  system_.machine().advance(120);
  ++stats_.events_total;

  const PhysAddr page = page_align_down(event.paddr);
  if (!pages_.contains(page)) {
    return hypersec::AppVerdict::kBenign;  // freed while event in flight
  }

  // Sanctioned descriptor updates are EL2 write-throughs and never reach
  // the bus; a bus-visible write on a live table page is tampering by
  // construction.
  const u64 word = (event.paddr - page) / kWordSize;
  alerts_.push_back(Alert{AlertKind::kPtPageTampered, event.paddr, word, 0,
                          event.value, system_.machine().account().cycles(),
                          "bus write reached a protected page-table page"});
  HN_LOG_INFO("secapp", "ALERT pt page tampered (pa=%llx word=%llu val=%llx)",
              static_cast<unsigned long long>(event.paddr),
              static_cast<unsigned long long>(word),
              static_cast<unsigned long long>(event.value));

  // Tie the raw write to the nested-kernel predicate it broke: re-audit
  // and classify each finding not already alerted on.
  ++stats_.audits_run;
  for (const hypersec::AuditFinding& f : system_.hypersec()->audit_report()) {
    if (!reported_.emplace(static_cast<u8>(f.code), f.detail).second) continue;
    alerts_.push_back(
        Alert{AlertKind::kPtInvariantViolated, event.paddr, word, 0,
              event.value, system_.machine().account().cycles(),
              std::string(hypersec::audit_code_name(f.code)) + ": " +
                  f.detail});
    HN_LOG_INFO("secapp", "ALERT invariant violated (%s)",
                hypersec::audit_code_name(f.code));
  }
  return hypersec::AppVerdict::kAlert;
}

}  // namespace hn::secapps
