// A bare external bus monitor WITHOUT Hypersec — the related-work baseline
// (§2 "hardware-based", KI-Mon-style) that Hypernel improves on.
//
// It programs the MBM bitmap directly (firmware-style, through the
// physical port) for physical regions it was told about once, and polls
// the event ring.  Because it has no view of CPU-internal state, it:
//   * cannot learn about dynamically (re)allocated objects, and
//   * is blind to address-translation redirection (ATRA [15]): if the
//     kernel relocates an object and patches its mapping, the monitor
//     keeps watching the stale physical page.
// examples/atra_attack.cpp demonstrates both failure modes.
#pragma once

#include <vector>

#include "common/types.h"
#include "mbm/bitmap_math.h"
#include "mbm/monitor.h"
#include "sim/machine.h"

namespace hn::secapps {

class BaselineExternalMonitor {
 public:
  BaselineExternalMonitor(sim::Machine& machine, mbm::MemoryBusMonitor& mbm)
      : machine_(machine), mbm_(mbm) {}

  /// Watch a fixed physical range (configured out-of-band, e.g. from a
  /// boot-time symbol table — all the context an external monitor has).
  void watch_phys(PhysAddr pa, u64 size) {
    const mbm::MbmConfig& cfg = mbm_.config();
    for (PhysAddr w = word_align_down(pa); w < pa + size; w += kWordSize) {
      const u64 bit = mbm::bit_index_for(w, cfg.watch_base);
      const PhysAddr wa = mbm::bitmap_word_addr(bit, cfg.bitmap_base);
      const u64 v = machine_.phys().read64(wa);
      machine_.phys().write64(wa, v | (u64{1} << mbm::bit_position(bit)));
      // Keep the MBM's bitmap cache coherent the way firmware would: it
      // has no cache-control port, so invalidate wholesale.
      mbm_.bitmap_cache().invalidate_all();
    }
    watched_.push_back({pa, size});
  }

  /// Drain the ring; returns the number of events collected this poll.
  u64 poll() {
    u64 n = 0;
    mbm::MonitorEvent ev;
    while (mbm_.ring().pop(ev)) {
      events_.push_back(ev);
      ++n;
    }
    return n;
  }

  [[nodiscard]] const std::vector<mbm::MonitorEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool saw_write_to(PhysAddr pa) const {
    for (const mbm::MonitorEvent& ev : events_) {
      if (word_align_down(ev.paddr) == word_align_down(pa)) return true;
    }
    return false;
  }

 private:
  struct Watched {
    PhysAddr pa;
    u64 size;
  };
  sim::Machine& machine_;
  mbm::MemoryBusMonitor& mbm_;
  std::vector<Watched> watched_;
  std::vector<mbm::MonitorEvent> events_;
};

}  // namespace hn::secapps
