// A Vigilare-style snapshot monitor: the *other* hardware-monitor lineage
// the paper's related work contrasts with event-triggered designs (§2).
//
// It keeps baseline hashes of watched regions and detects modifications
// only when a scan runs — so a transient attack (modify, exploit, revert
// between scans) evades it, while the event-triggered MBM pipeline
// catches the write the moment it hits the bus.  The comparison test and
// the detection-latency bench build on exactly that difference.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "hypernel/system.h"

namespace hn::secapps {

class SnapshotMonitor {
 public:
  explicit SnapshotMonitor(hypernel::System& system) : system_(system) {}

  /// Baseline a kernel-VA region (word aligned).  Reads run at EL2 via
  /// the linear map, charged like any Hypersec access.
  Status watch(VirtAddr va, u64 size, std::string label);

  /// Rescan every watched region against its baseline.  Returns the number
  /// of regions found modified this scan (each also appended to alerts()).
  u64 scan();

  /// Accept the current contents as the new baseline (after a legitimate
  /// update the monitor was told about).
  Status rebaseline(VirtAddr va);

  struct SnapshotAlert {
    std::string label;
    VirtAddr va = 0;
    u64 scan_index = 0;
  };
  [[nodiscard]] const std::vector<SnapshotAlert>& alerts() const {
    return alerts_;
  }
  [[nodiscard]] u64 scans() const { return scan_index_; }
  [[nodiscard]] u64 regions() const { return regions_.size(); }

 private:
  struct Region {
    VirtAddr va = 0;
    u64 size = 0;
    u64 hash = 0;
    std::string label;
  };

  u64 hash_region(VirtAddr va, u64 size);

  hypernel::System& system_;
  std::vector<Region> regions_;
  std::vector<SnapshotAlert> alerts_;
  u64 scan_index_ = 0;
};

}  // namespace hn::secapps
