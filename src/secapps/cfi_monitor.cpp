#include "secapps/cfi_monitor.h"

#include <cassert>

#include "common/hvc_abi.h"
#include "common/log.h"
#include "kernel/layout.h"
#include "kernel/objects.h"

namespace hn::secapps {

using kernel::DentryLayout;

CfiMonitor::CfiMonitor(hypernel::System& system, bool watch_dentry_ops,
                       u64 sid)
    : system_(system), watch_dentry_ops_(watch_dentry_ops), sid_(sid) {}

Status CfiMonitor::install() {
  assert(!installed_);
  if (Status s = system_.register_security_app(*this); !s.ok()) return s;
  kernel::Kernel& k = system_.kernel();

  // The anchor tables are populated by the boot ROM and immutable for the
  // kernel's lifetime: baseline once, monitor forever.
  register_words(kernel::phys_to_virt(kernel::kSyscallTableBase),
                 kernel::kSyscallTableEntries);
  register_words(kernel::phys_to_virt(kernel::kVectorTableBase),
                 kernel::kVectorTableEntries);

  k.modules().set_observers(
      [this](const kernel::LoadedModule& mod) { hook_module_load(mod); },
      [this](const kernel::LoadedModule& mod) { hook_module_unload(mod); });
  for (const auto& [name, mod] : k.modules().all()) {
    (void)name;
    hook_module_load(mod);
  }

  if (watch_dentry_ops_) {
    k.set_object_hooks(
        kernel::ObjectKind::kDentry,
        [this](VirtAddr va) {
          register_words(va + DentryLayout::kOp * kWordSize, 1);
        },
        [this](VirtAddr va) {
          unregister_words(va + DentryLayout::kOp * kWordSize, 1);
        });
  }
  installed_ = true;
  return Status::Ok();
}

void CfiMonitor::register_words(VirtAddr va, u64 words) {
  const u64 rc =
      system_.machine().hvc(hvc::kMonRegister, {sid_, va, words * kWordSize});
  if (rc != hvc::kOk) {
    HN_LOG_WARN("secapp", "CFI region registration failed (va=%llx rc=%llu)",
                static_cast<unsigned long long>(va),
                static_cast<unsigned long long>(rc));
    return;
  }
  const PhysAddr pa = kernel::virt_to_phys(va);
  for (u64 w = 0; w < words; ++w) {
    baseline_[pa + w * kWordSize] =
        system_.machine().el2_read64(pa + w * kWordSize);
  }
}

void CfiMonitor::unregister_words(VirtAddr va, u64 words) {
  system_.machine().hvc(hvc::kMonUnregister, {sid_, va, words * kWordSize});
  const PhysAddr pa = kernel::virt_to_phys(va);
  for (u64 w = 0; w < words; ++w) {
    baseline_.erase(pa + w * kWordSize);
  }
}

void CfiMonitor::hook_module_load(const kernel::LoadedModule& mod) {
  // Fires after the loader seals the text RX, so every staged write has
  // already happened unmonitored.  One region per page: MBM regions must
  // not straddle page boundaries.
  for (u64 p = 0; p < mod.text_pages; ++p) {
    const VirtAddr va = mod.text_va + p * kPageSize;
    register_words(va, kPageSize / kWordSize);
    module_pages_.insert(kernel::virt_to_phys(va));
  }
  ++stats_.modules_registered;
}

void CfiMonitor::hook_module_unload(const kernel::LoadedModule& mod) {
  // Fires before the text unseals, so the RW teardown writes and the
  // recycled frames are never monitored.
  for (u64 p = 0; p < mod.text_pages; ++p) {
    const VirtAddr va = mod.text_va + p * kPageSize;
    unregister_words(va, kPageSize / kWordSize);
    module_pages_.erase(kernel::virt_to_phys(va));
  }
  ++stats_.modules_unregistered;
}

AlertKind CfiMonitor::classify(PhysAddr pa) const {
  if (pa >= kernel::kSyscallTableBase &&
      pa < kernel::kSyscallTableBase +
               kernel::kSyscallTableEntries * kWordSize) {
    return AlertKind::kSyscallPatched;
  }
  if (pa >= kernel::kVectorTableBase &&
      pa < kernel::kVectorTableBase + kernel::kVectorTableEntries * kWordSize) {
    return AlertKind::kVectorPatched;
  }
  if (module_pages_.contains(page_align_down(pa))) {
    return AlertKind::kModuleTextPatched;
  }
  return AlertKind::kFnPtrHijacked;
}

hypersec::AppVerdict CfiMonitor::on_write_event(
    const mbm::MonitorEvent& event, const hypersec::RegionInfo& region) {
  // EL2 verification work: one baseline lookup + compare.
  system_.machine().advance(90);
  ++stats_.events_total;

  auto it = baseline_.find(event.paddr);
  if (it == baseline_.end()) {
    return hypersec::AppVerdict::kBenign;  // unregistered while in flight
  }
  const AlertKind kind = classify(event.paddr);
  switch (kind) {
    case AlertKind::kSyscallPatched: ++stats_.events_syscall; break;
    case AlertKind::kVectorPatched: ++stats_.events_vector; break;
    case AlertKind::kModuleTextPatched: ++stats_.events_module; break;
    default: ++stats_.events_fnptr; break;
  }

  if (kind == AlertKind::kFnPtrHijacked && it->second == 0) {
    // Slab objects arrive zeroed, so the first store into a fresh slot is
    // the kernel sealing its control-flow pointer: adopt it as baseline.
    it->second = event.value;
    return hypersec::AppVerdict::kBenign;
  }
  if (event.value == it->second) {
    // The slot still (or again) holds its sealed control-flow target:
    // idempotent stores and restores are benign.
    return hypersec::AppVerdict::kBenign;
  }
  if (kind == AlertKind::kFnPtrHijacked && event.value == 0) {
    // Slab pointer cleared at teardown — matches the object-integrity
    // monitor's policy that a nulled d_op is disabling, not hijacking.
    return hypersec::AppVerdict::kBenign;
  }

  const char* reason = "function-pointer slab word hijacked";
  if (kind == AlertKind::kSyscallPatched) {
    reason = "syscall-table entry rewritten";
  } else if (kind == AlertKind::kVectorPatched) {
    reason = "exception-vector entry rewritten";
  } else if (kind == AlertKind::kModuleTextPatched) {
    reason = "sealed module text patched";
  }
  const u64 word = (event.paddr - region.pa_base) / kWordSize;
  alerts_.push_back(Alert{kind, event.paddr, word, it->second, event.value,
                          system_.machine().account().cycles(), reason});
  HN_LOG_INFO("secapp", "ALERT %s (pa=%llx %llx->%llx)", reason,
              static_cast<unsigned long long>(event.paddr),
              static_cast<unsigned long long>(it->second),
              static_cast<unsigned long long>(event.value));
  return hypersec::AppVerdict::kAlert;
}

}  // namespace hn::secapps
