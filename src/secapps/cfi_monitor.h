// Kernel control-flow-integrity monitor (Camouflage-style, see PAPERS.md).
//
// Kernel CFI in this model means: every indirect control-flow anchor the
// kernel dispatches through holds exactly the value it was sealed with.
// The monitor registers the anchors with the MBM at word granularity:
//
//   * the syscall dispatch table (rodata) and the exception-vector table
//     (top page of text, where VBAR_EL1 points) — baselined at install,
//   * sealed module text — registered page-by-page on the module-loader
//     lifecycle observers, AFTER sealing (staging writes are unmonitored)
//     and unregistered before unload (recycled frames are unmonitored),
//   * optionally each live dentry's d_op word — the function-pointer-
//     bearing slab field rootkits hook for file hiding.  Disabled when
//     the object-integrity monitor is co-installed: both would register
//     the same words and the MBM driver's bitmap bookkeeping (and the
//     kernel's single dentry hook slot) assume one owner per word.
//
// Verification is pure baseline comparison: a monitored word observed
// with any value other than its registered one is a hijack; writes that
// restore the registered value (or clear a slab pointer at teardown) are
// benign.  Slab words register zeroed (the alloc hook fires before the
// kernel initializes the object), so the first store into a zero-baseline
// slab word is the kernel sealing its pointer and adopts the baseline;
// after that — and always, for the boot-sealed anchor tables — baselines
// never change for the anchor's lifetime.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hypernel/system.h"
#include "hypersec/security_app.h"
#include "kernel/modules.h"
#include "secapps/alert.h"

namespace hn::secapps {

struct CfiStats {
  u64 events_total = 0;
  u64 events_syscall = 0;
  u64 events_vector = 0;
  u64 events_module = 0;
  u64 events_fnptr = 0;
  u64 modules_registered = 0;
  u64 modules_unregistered = 0;
};

class CfiMonitor : public hypersec::SecurityApp {
 public:
  explicit CfiMonitor(hypernel::System& system, bool watch_dentry_ops = true,
                      u64 sid = 5);

  /// Register with Hypersec, baseline the anchor tables, install the
  /// module-lifecycle observers (and dentry hooks when enabled), and
  /// register any already-loaded module text.
  Status install();

  // --- hypersec::SecurityApp -------------------------------------------------
  [[nodiscard]] u64 sid() const override { return sid_; }
  [[nodiscard]] const char* name() const override { return "kernel-cfi"; }
  hypersec::AppVerdict on_write_event(
      const mbm::MonitorEvent& event,
      const hypersec::RegionInfo& region) override;

  [[nodiscard]] const CfiStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] bool has_alert(AlertKind kind) const {
    return secapps::has_alert(alerts_, kind);
  }
  [[nodiscard]] u64 baseline_words() const { return baseline_.size(); }
  [[nodiscard]] bool watching_dentry_ops() const { return watch_dentry_ops_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Executor-owned blob, like the object monitor.  Hook/observer wiring is
  // install-time and survives restores.

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(installed_);
    w.put_u64(baseline_.size());
    for (const auto& [pa, value] : baseline_) {
      w.put_u64(pa);
      w.put_u64(value);
    }
    w.put_u64(module_pages_.size());
    for (const PhysAddr pa : module_pages_) w.put_u64(pa);
    w.put_u64(stats_.events_total);
    w.put_u64(stats_.events_syscall);
    w.put_u64(stats_.events_vector);
    w.put_u64(stats_.events_module);
    w.put_u64(stats_.events_fnptr);
    w.put_u64(stats_.modules_registered);
    w.put_u64(stats_.modules_unregistered);
    save_alerts(w, alerts_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("cfi monitor");
    installed_ = r.get_bool();
    const u64 nbase = r.get_count("baseline word");
    baseline_.clear();
    for (u64 i = 0; r.ok() && i < nbase; ++i) {
      const PhysAddr pa = r.get_u64();
      baseline_.emplace_hint(baseline_.end(), pa, r.get_u64());
    }
    const u64 npages = r.get_count("module text page");
    module_pages_.clear();
    for (u64 i = 0; r.ok() && i < npages; ++i) {
      module_pages_.emplace_hint(module_pages_.end(), r.get_u64());
    }
    stats_.events_total = r.get_u64();
    stats_.events_syscall = r.get_u64();
    stats_.events_vector = r.get_u64();
    stats_.events_module = r.get_u64();
    stats_.events_fnptr = r.get_u64();
    stats_.modules_registered = r.get_u64();
    stats_.modules_unregistered = r.get_u64();
    restore_alerts(r, alerts_);
  }

 private:
  /// Register `words` contiguous words at linear-map `va` and record their
  /// current contents as the baseline.
  void register_words(VirtAddr va, u64 words);
  void unregister_words(VirtAddr va, u64 words);
  void hook_module_load(const kernel::LoadedModule& mod);
  void hook_module_unload(const kernel::LoadedModule& mod);
  [[nodiscard]] AlertKind classify(PhysAddr pa) const;

  hypernel::System& system_;
  bool watch_dentry_ops_;
  u64 sid_;
  std::map<PhysAddr, u64> baseline_;  // word PA -> sealed value
  std::set<PhysAddr> module_pages_;   // sealed module text pages
  CfiStats stats_;
  std::vector<Alert> alerts_;
  bool installed_ = false;
};

}  // namespace hn::secapps
