// Typed alert classification shared by every security app.
//
// Detection verdicts used to be communicated through free-text reason
// strings ("dentry operations vtable hooked"), which callers then matched
// by substring — brittle against any wording edit.  Alerts now carry a
// closed AlertKind enum; the reason text survives purely as a
// human-readable label and is never matched programmatically.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/snapshot.h"

namespace hn::secapps {

/// What a detector concluded about a monitored write.  One value per
/// policy predicate, across all detectors, so scorecards can aggregate
/// per-kind without parsing text.
enum class AlertKind : u8 {
  // Object-integrity monitor (cred/dentry, §7.2 footnote 2).
  kCredIdLowered = 0,     // uid..fsgid word forced to 0 (root)
  kCredCapEscalated = 1,  // capability mask forged to ~0
  kDentryOpsHooked = 2,   // d_op swapped off the kernel vtable
  kDentryInodeHijacked = 3,  // d_inode redirected while live
  // Invariant checker (nested-kernel predicates over page tables).
  kPtPageTampered = 4,       // bus-visible write reached a live PTP
  kPtInvariantViolated = 5,  // audit predicate broken (W+X, alias, ...)
  // Kernel-CFI monitor (Camouflage-style control-flow protection).
  kVectorPatched = 6,      // exception-vector entry rewritten
  kSyscallPatched = 7,     // syscall-table entry rewritten
  kModuleTextPatched = 8,  // sealed module text modified in place
  kFnPtrHijacked = 9,      // function-pointer slab word hijacked
  kCount,
};

constexpr const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kCredIdLowered: return "cred-id-lowered";
    case AlertKind::kCredCapEscalated: return "cred-cap-escalated";
    case AlertKind::kDentryOpsHooked: return "dentry-ops-hooked";
    case AlertKind::kDentryInodeHijacked: return "dentry-inode-hijacked";
    case AlertKind::kPtPageTampered: return "pt-page-tampered";
    case AlertKind::kPtInvariantViolated: return "pt-invariant-violated";
    case AlertKind::kVectorPatched: return "vector-patched";
    case AlertKind::kSyscallPatched: return "syscall-patched";
    case AlertKind::kModuleTextPatched: return "module-text-patched";
    case AlertKind::kFnPtrHijacked: return "fn-ptr-hijacked";
    case AlertKind::kCount: break;
  }
  return "unknown";
}

struct Alert {
  AlertKind kind = AlertKind::kCount;
  PhysAddr pa = 0;
  u64 word_offset = 0;  // word index within the monitored object/table
  u64 old_value = 0;
  u64 new_value = 0;
  Cycles at = 0;  // simulated cycle the detector classified the write
  std::string reason;
};

inline void save_alerts(sim::SnapWriter& w, const std::vector<Alert>& alerts) {
  w.put_u64(alerts.size());
  for (const Alert& a : alerts) {
    w.put_u8(static_cast<u8>(a.kind));
    w.put_u64(a.pa);
    w.put_u64(a.word_offset);
    w.put_u64(a.old_value);
    w.put_u64(a.new_value);
    w.put_u64(a.at);
    w.put_string(a.reason);
  }
}

inline void restore_alerts(sim::SnapReader& r, std::vector<Alert>& alerts) {
  const u64 n = r.get_count("alert");
  alerts.clear();
  alerts.reserve(r.ok() ? n : 0);
  for (u64 i = 0; r.ok() && i < n; ++i) {
    Alert a;
    a.kind = static_cast<AlertKind>(r.get_u8());
    a.pa = r.get_u64();
    a.word_offset = r.get_u64();
    a.old_value = r.get_u64();
    a.new_value = r.get_u64();
    a.at = r.get_u64();
    a.reason = r.get_string();
    alerts.push_back(std::move(a));
  }
}

/// Typed query: does any alert in `alerts` carry `kind`?
inline bool has_alert(const std::vector<Alert>& alerts, AlertKind kind) {
  for (const Alert& a : alerts) {
    if (a.kind == kind) return true;
  }
  return false;
}

}  // namespace hn::secapps
