// The paper's security solutions (§7.2): integrity monitors for the cred
// and dentry kernel objects, in the two variants Table 2 compares —
//
//   kSensitiveFields — word-granularity monitoring of only the fields an
//       attacker must touch (uid/gid/capabilities; d_inode/d_name/d_op...),
//   kWholeObject     — monitoring of every word of the object, whose event
//       count equals what a page-granularity scheme would trap (§7.2's
//       estimation argument).
//
// The monitor installs kernel object-lifetime hooks; each hook issues the
// kMonRegister hypercall (§5.3 step 1), Hypersec programs the MBM, and
// write events come back through on_write_event (step 8), where the
// monitor verifies the write against its integrity policy.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hypernel/system.h"
#include "hypersec/security_app.h"
#include "kernel/objects.h"
#include "secapps/alert.h"

namespace hn::secapps {

enum class Granularity : u8 { kSensitiveFields, kWholeObject };

struct MonitorStats {
  u64 events_total = 0;
  u64 events_cred = 0;
  u64 events_dentry = 0;
  u64 objects_registered = 0;
  u64 objects_unregistered = 0;
};

class ObjectIntegrityMonitor : public hypersec::SecurityApp {
 public:
  ObjectIntegrityMonitor(hypernel::System& system, Granularity granularity,
                         bool watch_cred = true, bool watch_dentry = true,
                         u64 sid = 1);

  /// Register with Hypersec, install the kernel hooks, and register every
  /// already-live watched object (the init task's cred).
  Status install();

  // --- hypersec::SecurityApp -------------------------------------------------
  [[nodiscard]] u64 sid() const override { return sid_; }
  [[nodiscard]] const char* name() const override {
    return "object-integrity-monitor";
  }
  hypersec::AppVerdict on_write_event(
      const mbm::MonitorEvent& event,
      const hypersec::RegionInfo& region) override;

  [[nodiscard]] const MonitorStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] bool has_alert(AlertKind kind) const {
    return secapps::has_alert(alerts_, kind);
  }
  [[nodiscard]] Granularity granularity() const { return granularity_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // The monitor is executor-owned, not part of hypernel::System, so its
  // state serializes separately (the fuzz snapshot-boot path pairs each
  // system snapshot with a monitor blob).

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(installed_);
    w.put_u64(shadow_.size());
    for (const auto& [pa, value] : shadow_) {
      w.put_u64(pa);
      w.put_u64(value);
    }
    w.put_u64(object_kind_.size());
    for (const auto& [pa, kind] : object_kind_) {
      w.put_u64(pa);
      w.put_u8(static_cast<u8>(kind));
    }
    w.put_u64(stats_.events_total);
    w.put_u64(stats_.events_cred);
    w.put_u64(stats_.events_dentry);
    w.put_u64(stats_.objects_registered);
    w.put_u64(stats_.objects_unregistered);
    save_alerts(w, alerts_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("object monitor");
    installed_ = r.get_bool();
    const u64 nshadow = r.get_count("shadow word");
    shadow_.clear();
    for (u64 i = 0; r.ok() && i < nshadow; ++i) {
      const PhysAddr pa = r.get_u64();
      shadow_[pa] = r.get_u64();
    }
    const u64 nobjects = r.get_count("object");
    object_kind_.clear();
    for (u64 i = 0; r.ok() && i < nobjects; ++i) {
      const PhysAddr pa = r.get_u64();
      object_kind_[pa] = static_cast<kernel::ObjectKind>(r.get_u8());
    }
    stats_.events_total = r.get_u64();
    stats_.events_cred = r.get_u64();
    stats_.events_dentry = r.get_u64();
    stats_.objects_registered = r.get_u64();
    stats_.objects_unregistered = r.get_u64();
    restore_alerts(r, alerts_);
  }

 private:
  struct Range {
    u64 word = 0;   // first word offset
    u64 words = 0;  // run length
  };
  /// Word ranges to monitor for `kind` under the active granularity.
  [[nodiscard]] std::vector<Range> ranges_for(kernel::ObjectKind kind) const;
  void hook_alloc(kernel::ObjectKind kind, VirtAddr va);
  void hook_free(kernel::ObjectKind kind, VirtAddr va);
  void verify(kernel::ObjectKind kind, u64 word, PhysAddr pa, u64 old_value,
              u64 new_value);

  hypernel::System& system_;
  Granularity granularity_;
  bool watch_cred_;
  bool watch_dentry_;
  u64 sid_;
  std::map<PhysAddr, u64> shadow_;          // word PA -> last known value
  std::map<PhysAddr, kernel::ObjectKind> object_kind_;  // object base PA
  MonitorStats stats_;
  std::vector<Alert> alerts_;
  bool installed_ = false;
};

}  // namespace hn::secapps
