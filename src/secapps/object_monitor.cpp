#include "secapps/object_monitor.h"

#include <cassert>

#include "common/hvc_abi.h"
#include "common/log.h"
#include "kernel/layout.h"
#include "kernel/vfs.h"

namespace hn::secapps {

using kernel::CredLayout;
using kernel::DentryLayout;
using kernel::ObjectKind;

ObjectIntegrityMonitor::ObjectIntegrityMonitor(hypernel::System& system,
                                               Granularity granularity,
                                               bool watch_cred,
                                               bool watch_dentry, u64 sid)
    : system_(system), granularity_(granularity), watch_cred_(watch_cred),
      watch_dentry_(watch_dentry), sid_(sid) {}

std::vector<ObjectIntegrityMonitor::Range>
ObjectIntegrityMonitor::ranges_for(ObjectKind kind) const {
  if (granularity_ == Granularity::kWholeObject) {
    return {Range{0, kernel::object_words(kind)}};
  }
  // Coalesce the sensitive word list into contiguous runs: each run is one
  // kMonRegister hypercall and one bitmap update burst.
  std::vector<Range> out;
  for (const u64 w : kernel::sensitive_words(kind)) {
    if (!out.empty() && out.back().word + out.back().words == w) {
      ++out.back().words;
    } else {
      out.push_back(Range{w, 1});
    }
  }
  return out;
}

Status ObjectIntegrityMonitor::install() {
  assert(!installed_);
  if (Status s = system_.register_security_app(*this); !s.ok()) return s;
  kernel::Kernel& k = system_.kernel();
  if (watch_cred_) {
    k.set_object_hooks(
        ObjectKind::kCred,
        [this](VirtAddr va) { hook_alloc(ObjectKind::kCred, va); },
        [this](VirtAddr va) { hook_free(ObjectKind::kCred, va); });
    // Objects alive before installation (the init task's cred).
    for (const kernel::Task* task : k.procs().all_tasks()) {
      hook_alloc(ObjectKind::kCred, task->cred);
    }
  }
  if (watch_dentry_) {
    k.set_object_hooks(
        ObjectKind::kDentry,
        [this](VirtAddr va) { hook_alloc(ObjectKind::kDentry, va); },
        [this](VirtAddr va) { hook_free(ObjectKind::kDentry, va); });
  }
  installed_ = true;
  return Status::Ok();
}

void ObjectIntegrityMonitor::hook_alloc(ObjectKind kind, VirtAddr va) {
  // Kernel-context hook (§5.3 step 1): one hypercall per monitored range.
  const PhysAddr base_pa = kernel::virt_to_phys(va);
  object_kind_[base_pa] = kind;
  ++stats_.objects_registered;
  for (const Range& r : ranges_for(kind)) {
    const u64 rc = system_.machine().hvc(
        hvc::kMonRegister, {sid_, va + r.word * kWordSize, r.words * kWordSize});
    if (rc != hvc::kOk) {
      HN_LOG_WARN("secapp", "region registration failed (va=%llx)",
                  static_cast<unsigned long long>(va));
    }
    for (u64 w = 0; w < r.words; ++w) {
      // Baseline the verification state from the object's current
      // contents (cred objects arrive zeroed; dentries already carry
      // their d_alloc identity at hook time).
      shadow_[base_pa + (r.word + w) * kWordSize] =
          system_.machine().el2_read64(base_pa + (r.word + w) * kWordSize);
    }
  }
}

void ObjectIntegrityMonitor::hook_free(ObjectKind kind, VirtAddr va) {
  const PhysAddr base_pa = kernel::virt_to_phys(va);
  ++stats_.objects_unregistered;
  for (const Range& r : ranges_for(kind)) {
    system_.machine().hvc(
        hvc::kMonUnregister,
        {sid_, va + r.word * kWordSize, r.words * kWordSize});
    for (u64 w = 0; w < r.words; ++w) {
      shadow_.erase(base_pa + (r.word + w) * kWordSize);
    }
  }
  object_kind_.erase(base_pa);
}

hypersec::AppVerdict ObjectIntegrityMonitor::on_write_event(
    const mbm::MonitorEvent& event, const hypersec::RegionInfo& region) {
  (void)region;
  // EL2 verification work for one event.
  system_.machine().advance(90);
  ++stats_.events_total;

  // Slab objects are size-aligned, so the object base is the event address
  // rounded down to the object size (128 B for both kinds).
  const PhysAddr base = event.paddr & ~u64{127};
  auto it = object_kind_.find(base);
  if (it == object_kind_.end()) {
    return hypersec::AppVerdict::kBenign;  // freed while event in flight
  }
  const ObjectKind kind = it->second;
  if (kind == ObjectKind::kCred) {
    ++stats_.events_cred;
  } else {
    ++stats_.events_dentry;
  }

  const u64 word = (event.paddr - base) / kWordSize;
  const PhysAddr word_pa = base + word * kWordSize;
  const u64 old_value = shadow_.count(word_pa) ? shadow_[word_pa] : 0;
  const size_t alerts_before = alerts_.size();
  verify(kind, word, base, old_value, event.value);
  shadow_[word_pa] = event.value;
  return alerts_.size() > alerts_before ? hypersec::AppVerdict::kAlert
                                        : hypersec::AppVerdict::kBenign;
}

void ObjectIntegrityMonitor::verify(ObjectKind kind, u64 word, PhysAddr pa,
                                    u64 old_value, u64 new_value) {
  auto alert = [&](AlertKind what, const char* reason) {
    alerts_.push_back(Alert{what, pa, word, old_value, new_value,
                            system_.machine().account().cycles(), reason});
    HN_LOG_INFO("secapp", "ALERT %s (pa=%llx word=%llu %llx->%llx)", reason,
                static_cast<unsigned long long>(pa),
                static_cast<unsigned long long>(word),
                static_cast<unsigned long long>(old_value),
                static_cast<unsigned long long>(new_value));
  };

  if (kind == ObjectKind::kCred) {
    const bool is_id_word =
        word >= CredLayout::kUid && word <= CredLayout::kFsgid;
    if (is_id_word && new_value == 0 && old_value != 0) {
      alert(AlertKind::kCredIdLowered, "cred identity lowered to root");
    }
    const bool is_cap_word = word >= CredLayout::kCapInheritable &&
                             word <= CredLayout::kCapEffective;
    if (is_cap_word && new_value == ~u64{0} && old_value != 0 &&
        old_value != ~u64{0}) {
      alert(AlertKind::kCredCapEscalated, "capability mask escalated to full");
    }
    return;
  }

  // Dentry policy.
  if (word == DentryLayout::kOp && new_value != kernel::kDentryOpsVtable &&
      new_value != 0) {
    alert(AlertKind::kDentryOpsHooked, "dentry operations vtable hooked");
  }
  if (word == DentryLayout::kInode && old_value != 0 && new_value != 0 &&
      new_value != old_value) {
    alert(AlertKind::kDentryInodeHijacked, "dentry inode pointer hijacked");
  }
}

}  // namespace hn::secapps
