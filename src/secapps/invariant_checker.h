// Nested-kernel invariant checker (page-table integrity security app).
//
// Hypernel's core argument (§5.2) is that page tables are the kernel's
// most security-critical state: every legitimate update flows through
// Hypersec at EL2, which writes descriptors *through* to memory without a
// bus transaction.  This app closes the loop from the memory side: it
// mirrors Hypersec's translation-table inventory into MBM-monitored
// regions, so any BUS-VISIBLE write reaching a live page-table page —
// DMA, non-cacheable stores, or writes through a rogue writable alias —
// is tampering by construction, no value analysis required.
//
// On each tamper event it additionally re-runs Hypersec's full audit and
// raises one classified alert per newly-broken predicate (W^X, secure
// space reachable, writable PT alias, TTBR hijack), which is what ties a
// raw bus write to the nested-kernel invariant it violated.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hypernel/system.h"
#include "hypersec/security_app.h"
#include "secapps/alert.h"

namespace hn::secapps {

struct InvariantStats {
  u64 events_total = 0;
  u64 pages_registered = 0;
  u64 pages_unregistered = 0;
  u64 audits_run = 0;
};

class InvariantChecker : public hypersec::SecurityApp,
                         public hypersec::Hypersec::PtObserver {
 public:
  explicit InvariantChecker(hypernel::System& system, u64 sid = 4);

  /// Register with Hypersec, subscribe to the PT-page lifecycle, and
  /// mirror the already-built inventory (all of boot's tables) into
  /// monitored regions.  Requires kHypernel mode with the MBM attached.
  Status install();

  // --- hypersec::SecurityApp -------------------------------------------------
  [[nodiscard]] u64 sid() const override { return sid_; }
  [[nodiscard]] const char* name() const override {
    return "invariant-checker";
  }
  hypersec::AppVerdict on_write_event(
      const mbm::MonitorEvent& event,
      const hypersec::RegionInfo& region) override;

  // --- hypersec::Hypersec::PtObserver ----------------------------------------
  void on_pt_alloc(PhysAddr pa, unsigned level) override;
  void on_pt_free(PhysAddr pa) override;

  [[nodiscard]] const InvariantStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] bool has_alert(AlertKind kind) const {
    return secapps::has_alert(alerts_, kind);
  }
  [[nodiscard]] u64 monitored_pages() const { return pages_.size(); }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Executor-owned like the object monitor: serialized as a separate blob
  // next to the system snapshot.  Wiring (app registration, PT observer)
  // is re-established by install() and survives restores untouched.

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(installed_);
    w.put_u64(pages_.size());
    for (const PhysAddr pa : pages_) w.put_u64(pa);
    w.put_u64(reported_.size());
    for (const auto& [code, detail] : reported_) {
      w.put_u8(code);
      w.put_string(detail);
    }
    w.put_u64(stats_.events_total);
    w.put_u64(stats_.pages_registered);
    w.put_u64(stats_.pages_unregistered);
    w.put_u64(stats_.audits_run);
    save_alerts(w, alerts_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("invariant checker");
    installed_ = r.get_bool();
    const u64 npages = r.get_count("monitored PT page");
    pages_.clear();
    for (u64 i = 0; r.ok() && i < npages; ++i) {
      pages_.emplace_hint(pages_.end(), r.get_u64());
    }
    const u64 nreported = r.get_count("audit finding");
    reported_.clear();
    for (u64 i = 0; r.ok() && i < nreported; ++i) {
      const u8 code = r.get_u8();
      reported_.emplace(code, r.get_string());
    }
    stats_.events_total = r.get_u64();
    stats_.pages_registered = r.get_u64();
    stats_.pages_unregistered = r.get_u64();
    stats_.audits_run = r.get_u64();
    restore_alerts(r, alerts_);
  }

 private:
  void register_page(PhysAddr pa);

  hypernel::System& system_;
  u64 sid_;
  std::set<PhysAddr> pages_;  // monitored translation-table pages
  /// Audit findings already alerted on, so a broken predicate raises one
  /// alert, not one per subsequent event.
  std::set<std::pair<u8, std::string>> reported_;
  InvariantStats stats_;
  std::vector<Alert> alerts_;
  bool installed_ = false;
};

}  // namespace hn::secapps
