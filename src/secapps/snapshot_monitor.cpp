#include "secapps/snapshot_monitor.h"

#include "kernel/layout.h"

namespace hn::secapps {

u64 SnapshotMonitor::hash_region(VirtAddr va, u64 size) {
  // FNV-1a over the region's words, read through the EL2 linear map.
  const PhysAddr pa = kernel::virt_to_phys(va);
  u64 h = 0xCBF29CE484222325ull;
  for (u64 off = 0; off < size; off += kWordSize) {
    const u64 w = system_.machine().el2_read64(pa + off);
    h = (h ^ w) * 0x100000001B3ull;
  }
  return h;
}

Status SnapshotMonitor::watch(VirtAddr va, u64 size, std::string label) {
  if (!is_word_aligned(va) || size == 0 || size % kWordSize != 0) {
    return Status::Invalid("snapshot: region must be word aligned");
  }
  Region r;
  r.va = va;
  r.size = size;
  r.label = std::move(label);
  r.hash = hash_region(va, size);
  regions_.push_back(std::move(r));
  return Status::Ok();
}

u64 SnapshotMonitor::scan() {
  ++scan_index_;
  u64 modified = 0;
  for (Region& r : regions_) {
    const u64 now = hash_region(r.va, r.size);
    if (now != r.hash) {
      ++modified;
      alerts_.push_back(SnapshotAlert{r.label, r.va, scan_index_});
      r.hash = now;  // report each persistent change once
    }
  }
  return modified;
}

Status SnapshotMonitor::rebaseline(VirtAddr va) {
  for (Region& r : regions_) {
    if (r.va == va) {
      r.hash = hash_region(r.va, r.size);
      return Status::Ok();
    }
  }
  return Status::NotFound("snapshot: no such region");
}

}  // namespace hn::secapps
