#include "kernel/kpt.h"

#include <array>
#include <cassert>

#include "common/log.h"
#include "kernel/layout.h"

namespace hn::kernel {

using sim::PageAttrs;

PageTableManager::PageTableManager(sim::Machine& machine, BuddyAllocator& buddy)
    : machine_(machine), buddy_(buddy), direct_writer_(machine),
      writer_(&direct_writer_) {}

u64 PageTableManager::read_desc(PhysAddr table_pa, u64 index) {
  const sim::Access64 r = machine_.read64(phys_to_virt(table_pa + index * 8));
  assert(r.ok && "page-table pages must stay readable through the linear map");
  return r.value;
}

Result<PhysAddr> PageTableManager::alloc_table_page_boot(unsigned level) {
  Result<PhysAddr> pa = buddy_.alloc_page();
  if (!pa.ok()) return pa;
  machine_.phys().zero_range(pa.value(), kPageSize);
  pt_pages_[pa.value()] = level;
  return pa;
}

Result<PhysAddr> PageTableManager::alloc_table_page(unsigned level) {
  Result<PhysAddr> pa = buddy_.alloc_page();
  if (!pa.ok()) return pa;
  // Zero through the linear map (charged, streaming stores), then hand the
  // page over to the write policy: under Hypernel this is the kPtAlloc
  // hypercall after which the page is read-only at EL1.
  static const std::array<u8, kPageSize> kZeros{};
  machine_.write_block_bulk(phys_to_virt(pa.value()), kZeros.data(), kPageSize);
  pt_pages_[pa.value()] = level;
  writer_->on_pt_page_alloc(pa.value(), level);
  return pa;
}

Result<PhysAddr> PageTableManager::build_kernel_linear_map(PhysAddr limit,
                                                           bool use_sections) {
  assert(kernel_root_ == 0 && "kernel tables already built");
  Result<PhysAddr> root = alloc_table_page_boot(0);
  if (!root.ok()) return root;
  kernel_root_ = root.value();

  auto boot_map_page = [&](VirtAddr va, PhysAddr pa,
                           const PageAttrs& attrs) -> Status {
    PhysAddr table = kernel_root_;
    for (unsigned level = 0; level <= 2; ++level) {
      const u64 idx = sim::va_index(va, level);
      const u64 desc = machine_.phys().read64(table + idx * 8);
      if (!sim::desc_valid(desc)) {
        Result<PhysAddr> next = alloc_table_page_boot(level + 1);
        if (!next.ok()) return next.status();
        machine_.phys().write64(table + idx * 8,
                                sim::make_table_desc(next.value()));
        table = next.value();
      } else {
        assert(sim::desc_is_table(desc, level));
        table = sim::desc_out_addr(desc);
      }
    }
    machine_.phys().write64(table + sim::va_index(va, 3) * 8,
                            sim::make_page_desc(pa, attrs));
    return Status::Ok();
  };

  auto boot_map_section = [&](VirtAddr va, PhysAddr pa,
                              const PageAttrs& attrs) -> Status {
    PhysAddr table = kernel_root_;
    for (unsigned level = 0; level <= 1; ++level) {
      const u64 idx = sim::va_index(va, level);
      const u64 desc = machine_.phys().read64(table + idx * 8);
      if (!sim::desc_valid(desc)) {
        Result<PhysAddr> next = alloc_table_page_boot(level + 1);
        if (!next.ok()) return next.status();
        machine_.phys().write64(table + idx * 8,
                                sim::make_table_desc(next.value()));
        table = next.value();
      } else {
        table = sim::desc_out_addr(desc);
      }
    }
    machine_.phys().write64(table + sim::va_index(va, 2) * 8,
                            sim::make_block_desc(pa, attrs));
    return Status::Ok();
  };

  const PageAttrs text{.write = false, .exec = true, .user = false};
  const PageAttrs ro{.write = false, .exec = false, .user = false};
  const PageAttrs rw{.write = true, .exec = false, .user = false};

  if (use_sections) {
    // Stock-kernel style: the whole image section is one 2 MiB RWX block —
    // the protection-granularity hazard §6.2 eliminates — and the rest of
    // the linear region is 2 MiB RW blocks.
    const PageAttrs rwx{.write = true, .exec = true, .user = false};
    for (PhysAddr pa = 0; pa < limit; pa += kSectionSize) {
      const PageAttrs& a = pa < kImageEnd ? rwx : rw;
      if (Status s = boot_map_section(phys_to_virt(pa), pa, a); !s.ok()) return s;
    }
  } else {
    // Patched-kernel style (§6.2): everything in 4 KiB pages with W^X.
    for (PhysAddr pa = 0; pa < limit; pa += kPageSize) {
      const PageAttrs* a = &rw;
      if (pa < kTextSize) {
        a = &text;
      } else if (pa < kRodataBase + kRodataSize) {
        a = &ro;
      }
      if (Status s = boot_map_page(phys_to_virt(pa), pa, *a); !s.ok()) return s;
    }
  }
  return kernel_root_;
}

Result<PhysAddr> PageTableManager::alloc_user_root() {
  Result<PhysAddr> root = alloc_table_page(0);
  if (!root.ok()) return root;
  writer_->on_root_alloc(root.value());
  return root;
}

void PageTableManager::free_user_root(PhysAddr root) {
  writer_->on_root_free(root);
  writer_->on_pt_page_free(root);
  pt_pages_.erase(root);
  buddy_.free_page(root);
}

Status PageTableManager::map_page(PhysAddr root, VirtAddr va, PhysAddr pa,
                                  const PageAttrs& attrs) {
  PhysAddr table = root;
  for (unsigned level = 0; level <= 2; ++level) {
    const u64 idx = sim::va_index(va, level);
    const u64 desc = read_desc(table, idx);
    if (!sim::desc_valid(desc)) {
      Result<PhysAddr> next = alloc_table_page(level + 1);
      if (!next.ok()) return next.status();
      if (!writer_->write_desc(table, static_cast<unsigned>(idx),
                               sim::make_table_desc(next.value()))) {
        return Status::Denied("pt: table descriptor write rejected");
      }
      table = next.value();
    } else if (sim::desc_is_table(desc, level)) {
      table = sim::desc_out_addr(desc);
    } else {
      return Status::Precondition("pt: block mapping in the way");
    }
  }
  if (!writer_->write_desc(table,
                           static_cast<unsigned>(sim::va_index(va, 3)),
                           sim::make_page_desc(pa, attrs))) {
    return Status::Denied("pt: leaf descriptor write rejected");
  }
  machine_.tlb_shootdown_va(va);
  machine_.charge_tlbi();
  return Status::Ok();
}

PageTableManager::SwWalk PageTableManager::walk(PhysAddr root, VirtAddr va) {
  SwWalk out;
  PhysAddr table = root;
  for (unsigned level = 0; level <= 3; ++level) {
    const u64 idx = sim::va_index(va, level);
    const u64 desc = read_desc(table, idx);
    if (!sim::desc_valid(desc)) return out;
    if (sim::desc_is_table(desc, level)) {
      table = sim::desc_out_addr(desc);
      continue;
    }
    out.ok = true;
    out.desc = desc;
    out.level = level;
    out.desc_pa = table + idx * 8;
    return out;
  }
  return out;
}

Status PageTableManager::unmap_page(PhysAddr root, VirtAddr va,
                                    PhysAddr* old_pa) {
  const SwWalk w = walk(root, va);
  if (!w.ok || w.level != 3) return Status::NotFound("pt: no 4 KiB mapping");
  if (old_pa != nullptr) *old_pa = sim::desc_out_addr(w.desc);
  const PhysAddr table = w.desc_pa & ~kPageMask;
  const auto idx = static_cast<unsigned>((w.desc_pa & kPageMask) / 8);
  if (!writer_->write_desc(table, idx, 0)) {
    return Status::Denied("pt: unmap rejected");
  }
  machine_.tlb_shootdown_va(va);
  machine_.charge_tlbi();
  return Status::Ok();
}

Status PageTableManager::split_block(const SwWalk& w) {
  const PageAttrs attrs = sim::decode_attrs(w.desc);
  const PhysAddr base = sim::desc_out_addr(w.desc);
  Result<PhysAddr> table = alloc_table_page(3);
  if (!table.ok()) return table.status();
  for (u64 i = 0; i < kPtEntries; ++i) {
    if (!writer_->write_desc(table.value(), static_cast<unsigned>(i),
                             sim::make_page_desc(base + i * kPageSize, attrs))) {
      return Status::Denied("pt: block split leaf write rejected");
    }
  }
  const PhysAddr parent = w.desc_pa & ~kPageMask;
  const auto idx = static_cast<unsigned>((w.desc_pa & kPageMask) / 8);
  if (!writer_->write_desc(parent, idx, sim::make_table_desc(table.value()))) {
    return Status::Denied("pt: block split publish rejected");
  }
  // Break-before-make for the whole section.
  machine_.tlb_shootdown_all();
  machine_.charge_tlbi();
  return Status::Ok();
}

Status PageTableManager::set_page_attrs(PhysAddr root, VirtAddr va,
                                        const PageAttrs& attrs) {
  SwWalk w = walk(root, va);
  if (!w.ok) return Status::NotFound("pt: unmapped va");
  if (w.level == 2) {
    // A 2 MiB section covers 511 neighbours that must not inherit this
    // page's new permissions (module seal would silently turn unrelated
    // slab pages read-only).  Split to 4 KiB pages first.
    if (Status s = split_block(w); !s.ok()) return s;
    w = walk(root, va);
    assert(w.ok && w.level == 3);
  }
  const u64 desc = sim::desc_with_attrs(w.desc, attrs);
  const PhysAddr table = w.desc_pa & ~kPageMask;
  const auto idx = static_cast<unsigned>((w.desc_pa & kPageMask) / 8);
  if (!writer_->write_desc(table, idx, desc)) {
    return Status::Denied("pt: attrs change rejected");
  }
  machine_.tlb_shootdown_va(va);
  machine_.charge_tlbi();
  return Status::Ok();
}

Status PageTableManager::protect_linear(PhysAddr pa, const PageAttrs& attrs) {
  return set_page_attrs(kernel_root_, phys_to_virt(pa), attrs);
}

void PageTableManager::free_user_tree(PhysAddr root, bool free_leaf_frames) {
  // Depth-first teardown.  A real kernel scans only the present VMA
  // ranges; we model that with one flat scan charge per table page rather
  // than 512 individual charged loads, then act on the valid descriptors.
  auto recurse = [&](auto&& self, PhysAddr table, unsigned level) -> void {
    machine_.advance(64);
    for (u64 idx = 0; idx < kPtEntries; ++idx) {
      const u64 desc = machine_.phys().read64(table + idx * 8);
      if (!sim::desc_valid(desc)) continue;
      if (sim::desc_is_table(desc, level)) {
        const PhysAddr next = sim::desc_out_addr(desc);
        self(self, next, level + 1);
        writer_->on_pt_page_free(next);
        pt_pages_.erase(next);
        buddy_.free_page(next);
      } else if (level == 3 && free_leaf_frames) {
        const PhysAddr frame = sim::desc_out_addr(desc);
        if (buddy_.owns(frame)) buddy_.free_page(frame);
      }
    }
  };
  recurse(recurse, root, 0);
  machine_.tlb_shootdown_all();
  machine_.charge_tlbi();
  free_user_root(root);
}

}  // namespace hn::kernel
