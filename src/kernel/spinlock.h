// Deterministic spinlock timing model for the SMP simkernel.
//
// The simulation is sequentially time-multiplexed (one core runs at a
// time), so a lock can never be *held* by another core at acquisition —
// real waiting never happens.  What the model charges instead is the
// cache-line ping-pong a contended lock costs on real hardware: if a
// *different* core released the lock within the contention window, this
// acquisition pays `spinlock_contended` cycles (the line migrates between
// L1s) and counts as a contention.  The heuristic is temporal proximity,
// the same trick the shared-bus arbiter uses (DESIGN.md §15).
//
// On a single-core machine lock()/unlock() are complete no-ops, so every
// existing golden digest is untouched.  Lock state (last owner + release
// time) is architectural: it is snapshotted so a restore mid-workload
// reproduces the exact same contention charges as the uninterrupted run.
#pragma once

#include "sim/machine.h"
#include "sim/snapshot.h"

namespace hn::kernel {

class SpinLock {
 public:
  SpinLock() = default;

  /// Wire the lock to its machine.  Unbound locks no-op (the buddy
  /// allocator constructs before the kernel can hand it a machine).
  void bind(sim::Machine& machine) { machine_ = &machine; }

  void lock() {
    if (machine_ == nullptr || machine_->cores() < 2) return;
    const unsigned me = machine_->active_core();
    if (last_owner_ != kNoOwner && last_owner_ != me) {
      const Cycles now = machine_->account().cycles();
      if (now - last_release_ < machine_->timing().spinlock_contention_window) {
        machine_->advance(machine_->timing().spinlock_contended);
        ++machine_->counters().spin_contentions;
      }
    }
  }

  void unlock() {
    if (machine_ == nullptr || machine_->cores() < 2) return;
    last_owner_ = static_cast<u8>(machine_->active_core());
    last_release_ = machine_->account().cycles();
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u8(last_owner_);
    w.put_u64(last_release_);
  }

  void restore_state(sim::SnapReader& r) {
    last_owner_ = r.get_u8();
    last_release_ = r.get_u64();
  }

 private:
  static constexpr u8 kNoOwner = 0xFF;

  sim::Machine* machine_ = nullptr;
  u8 last_owner_ = kNoOwner;  // core that last released the lock
  Cycles last_release_ = 0;
};

/// RAII acquisition, in the std::lock_guard idiom.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace hn::kernel
