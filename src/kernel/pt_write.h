// How the kernel writes its own stage-1 page tables — *the* Hypernel
// instrumentation point (§5.2.1 / §6.2).
//
//  * DirectPtWriter: vanilla kernel behaviour; descriptors are stored with
//    ordinary EL1 writes through the linear map (Native and KVM-guest).
//  * HypercallPtWriter: the instrumented kernel; every descriptor write is
//    a hypercall that Hypersec verifies and performs (Hypernel).  Under
//    this policy PT pages are read-only at EL1, so a compromised kernel
//    cannot bypass the hypercall path (tested in the security suite).
#pragma once

#include "common/hvc_abi.h"
#include "common/types.h"
#include "kernel/layout.h"
#include "sim/machine.h"

namespace hn::kernel {

class PtWriter {
 public:
  virtual ~PtWriter() = default;

  /// Store `desc` into entry `index` of the table page at `table_pa`.
  /// Returns false if the write was rejected (Hypersec denial).
  virtual bool write_desc(PhysAddr table_pa, unsigned index, u64 desc) = 0;

  /// A zeroed page is about to become a translation-table page at walk
  /// level `level` (0 = root).
  virtual void on_pt_page_alloc(PhysAddr pa, unsigned level) {
    (void)pa;
    (void)level;
  }
  /// A translation-table page is being retired to the free pool.
  virtual void on_pt_page_free(PhysAddr pa) { (void)pa; }
  /// A new user page-table root came into existence / is being retired.
  virtual void on_root_alloc(PhysAddr root_pa) { (void)root_pa; }
  virtual void on_root_free(PhysAddr root_pa) { (void)root_pa; }
};

/// Vanilla path: plain EL1 stores through the linear map.
class DirectPtWriter final : public PtWriter {
 public:
  explicit DirectPtWriter(sim::Machine& machine)
      : machine_(machine),
        obs_pt_writes_(machine.obs().counter("kernel.pt_writes")) {}

  bool write_desc(PhysAddr table_pa, unsigned index, u64 desc) override {
    obs_pt_writes_.add();
    // Flight-recorder root of the PT-write chain: the store below (and
    // any fault or bus transaction it produces) links back to this event.
    sim::Trace& tr = machine_.trace();
    const u64 cause = tr.record(machine_.account().cycles(),
                                sim::TraceKind::kPtWrite,
                                table_pa + index * 8, desc);
    sim::Trace::CauseScope scope(tr, cause);
    return machine_.write64(phys_to_virt(table_pa + index * 8), desc).ok;
  }

 private:
  sim::Machine& machine_;
  obs::Counter obs_pt_writes_;
};

/// Instrumented path: one HVC per descriptor write, a la TZ-RKP (§5.2.1).
class HypercallPtWriter final : public PtWriter {
 public:
  explicit HypercallPtWriter(sim::Machine& machine)
      : machine_(machine),
        obs_pt_writes_(machine.obs().counter("kernel.pt_writes")) {}

  bool write_desc(PhysAddr table_pa, unsigned index, u64 desc) override {
    obs_pt_writes_.add();
    // Same chain root as the direct writer: the verification hypercall and
    // the EL2 store it performs are causally downstream of this event.
    sim::Trace& tr = machine_.trace();
    const u64 cause = tr.record(machine_.account().cycles(),
                                sim::TraceKind::kPtWrite,
                                table_pa + index * 8, desc);
    sim::Trace::CauseScope scope(tr, cause);
    return machine_.hvc(hvc::kPtWrite, {table_pa, index, desc}) == hvc::kOk;
  }
  void on_pt_page_alloc(PhysAddr pa, unsigned level) override {
    machine_.hvc(hvc::kPtAlloc, {pa, level});
  }
  void on_pt_page_free(PhysAddr pa) override {
    machine_.hvc(hvc::kPtFree, {pa});
  }
  void on_root_alloc(PhysAddr root_pa) override {
    machine_.hvc(hvc::kPtRegisterRoot, {root_pa});
  }
  void on_root_free(PhysAddr root_pa) override {
    machine_.hvc(hvc::kPtUnregisterRoot, {root_pa});
  }

 private:
  sim::Machine& machine_;
  obs::Counter obs_pt_writes_;
};

}  // namespace hn::kernel
