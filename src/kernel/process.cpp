#include "kernel/process.h"

#include <cassert>
#include <cstring>

#include "common/log.h"
#include "kernel/objects.h"
#include "sim/sysregs.h"

namespace hn::kernel {

using sim::PageAttrs;

namespace {
constexpr PageAttrs user_attrs(bool writable, bool executable) {
  return PageAttrs{.write = writable,
                   .exec = executable,
                   .user = true,
                   .global = false,
                   .attr = sim::MemAttr::kNormalCacheable};
}
}  // namespace

ProcessManager::ProcessManager(sim::Machine& machine, BuddyAllocator& buddy,
                               PageTableManager& kpt, SlabCache& cred_slab,
                               const KernelCosts& costs)
    : machine_(machine), buddy_(buddy), kpt_(kpt), cred_slab_(cred_slab),
      costs_(costs) {
  current_.assign(machine_.cores(), nullptr);
  rq_lock_.bind(machine_);
  // Per-CPU runqueue depth as level tracks: architectural state that
  // snapshots restore, so levels (unlike counters) need no delta trick.
  for (unsigned core = 0; core < machine_.cores(); ++core) {
    machine_.timeseries().enroll(
        "sim.core" + std::to_string(core) + ".runqueue",
        obs::TrackKind::kLevel, [this, core] { return runqueue_len(core); });
  }
}

ProcessManager::~ProcessManager() {
  for (unsigned core = 0; core < current_.size(); ++core) {
    machine_.timeseries().unenroll_prefix("sim.core" + std::to_string(core) +
                                          ".runqueue");
  }
}

unsigned ProcessManager::pick_cpu() const {
  if (current_.size() < 2) return 0;
  std::vector<u64> load(current_.size(), 0);
  for (const auto& [pid, task] : tasks_) {
    if (task->alive) ++load[task->cpu];
  }
  unsigned best = 0;
  for (unsigned c = 1; c < load.size(); ++c) {
    if (load[c] < load[best]) best = c;
  }
  return best;
}

u64 ProcessManager::runqueue_len(unsigned core) const {
  u64 n = 0;
  for (const auto& [pid, task] : tasks_) {
    if (task->alive && task->cpu == core) ++n;
  }
  return n;
}

void ProcessManager::write_cred_word(VirtAddr cred, u64 word, u64 value) {
  [[maybe_unused]] const sim::Access64 r =
      machine_.write64(cred + word * kWordSize, value);
  assert(r.ok && "cred slab pages must stay writable");
}

Result<VirtAddr> ProcessManager::make_cred(u64 uid, u64 gid) {
  Result<VirtAddr> obj = cred_slab_.alloc();
  if (!obj.ok()) return obj;
  const VirtAddr c = obj.value();
  using C = CredLayout;
  write_cred_word(c, C::kUsage, 1);
  write_cred_word(c, C::kUid, uid);
  write_cred_word(c, C::kGid, gid);
  write_cred_word(c, C::kSuid, uid);
  write_cred_word(c, C::kSgid, gid);
  write_cred_word(c, C::kEuid, uid);
  write_cred_word(c, C::kEgid, gid);
  write_cred_word(c, C::kFsuid, uid);
  write_cred_word(c, C::kFsgid, gid);
  write_cred_word(c, C::kSecurebits, 0);
  const u64 caps = (uid == 0) ? ~u64{0} : 0;
  write_cred_word(c, C::kCapInheritable, 0);
  write_cred_word(c, C::kCapPermitted, caps);
  write_cred_word(c, C::kCapEffective, caps);
  return c;
}

void ProcessManager::cred_get(VirtAddr cred) {
  const sim::Access64 u = machine_.read64(cred + CredLayout::kUsage * kWordSize);
  assert(u.ok);
  write_cred_word(cred, CredLayout::kUsage, u.value + 1);
}

void ProcessManager::cred_put(VirtAddr cred) {
  const sim::Access64 u = machine_.read64(cred + CredLayout::kUsage * kWordSize);
  assert(u.ok && u.value >= 1);
  write_cred_word(cred, CredLayout::kUsage, u.value - 1);
  if (u.value - 1 == 0) {
    // RCU-deferred free in Linux; immediate here, with the rcu-head write
    // the deferral would perform.
    write_cred_word(cred, CredLayout::kRcuHead0, cred ^ 0x4C55);
    cred_slab_.free(cred);
  }
}

Status ProcessManager::setuid(Task& task, u64 uid) {
  using C = CredLayout;
  write_cred_word(task.cred, C::kUid, uid);
  write_cred_word(task.cred, C::kEuid, uid);
  write_cred_word(task.cred, C::kSuid, uid);
  write_cred_word(task.cred, C::kFsuid, uid);
  const u64 caps = (uid == 0) ? ~u64{0} : 0;
  write_cred_word(task.cred, C::kCapPermitted, caps);
  write_cred_word(task.cred, C::kCapEffective, caps);
  return Status::Ok();
}

Result<u64> ProcessManager::cred_uid(const Task& task) {
  const sim::Access64 r =
      machine_.read64(task.cred + CredLayout::kUid * kWordSize);
  if (!r.ok) return Status::Internal("cred read failed");
  return r.value;
}

void ProcessManager::frame_ref(PhysAddr frame) { ++frame_refs_[frame]; }

void ProcessManager::frame_unref(PhysAddr frame) {
  auto it = frame_refs_.find(frame);
  assert(it != frame_refs_.end());
  if (--it->second == 0) {
    frame_refs_.erase(it);
    buddy_.free_page(frame);
    machine_.advance(costs_.page_free);
  }
}

u64 ProcessManager::frame_refs(PhysAddr frame) const {
  auto it = frame_refs_.find(frame);
  return it == frame_refs_.end() ? 0 : it->second;
}

Result<Task*> ProcessManager::make_task() {
  auto task = std::make_unique<Task>();
  task->pid = next_pid_++;
  task->asid = static_cast<u16>(task->pid);
  Result<PhysAddr> root = kpt_.alloc_user_root();
  if (!root.ok()) return root.status();
  task->ttbr0 = root.value();
  // Per-task kernel stack: a fresh order-2 block, zeroed through the
  // linear map (its alloc/free churn is what stage-2 laziness re-faults
  // on under KVM).
  Result<PhysAddr> kstack = buddy_.alloc_pages(2);
  if (!kstack.ok()) {
    kpt_.free_user_root(root.value());
    return kstack.status();
  }
  task->kstack = kstack.value();
  machine_.advance(costs_.page_alloc);
  static const std::array<u8, 4 * kPageSize> kZeros{};
  machine_.write_block_bulk(phys_to_virt(task->kstack), kZeros.data(),
                            4 * kPageSize);
  Task* raw = task.get();
  tasks_[task->pid] = std::move(task);
  return raw;
}

Status ProcessManager::map_fresh_page(Task& task, VirtAddr page_va,
                                      bool writable, bool executable) {
  Result<PhysAddr> frame = buddy_.alloc_page();
  if (!frame.ok()) return frame.status();
  machine_.advance(costs_.page_alloc);
  // Zero through the linear map (charged bulk path).
  static const std::array<u8, kPageSize> kZeros{};
  machine_.write_block_bulk(phys_to_virt(frame.value()), kZeros.data(),
                            kPageSize);
  frame_ref(frame.value());
  return kpt_.map_page(task.ttbr0, page_va, frame.value(),
                       user_attrs(writable, executable));
}

Status ProcessManager::map_segments(Task& task, const ProcImage& image,
                                    bool eager) {
  const Vma text{kUserTextBase, kUserTextBase + image.text_pages * kPageSize,
                 false, true};
  const Vma data{kUserHeapBase, kUserHeapBase + image.data_pages * kPageSize,
                 true, false};
  const VirtAddr stack_low = kUserStackTop - image.stack_pages * kPageSize;
  const Vma stack{stack_low, kUserStackTop, true, false};
  task.vmas = {text, data, stack};
  task.signal_sp = kUserStackTop - 256;
  if (eager) {
    for (const Vma& vma : task.vmas) {
      for (VirtAddr va = vma.start; va < vma.end; va += kPageSize) {
        if (Status s = map_fresh_page(task, va, vma.writable, vma.executable);
            !s.ok()) {
          return s;
        }
      }
    }
    return Status::Ok();
  }
  // Lazy (execve): populate only the entry pages; the rest demand-faults,
  // as a real ELF loader behaves.
  struct Seed {
    VirtAddr va;
    bool writable;
    bool executable;
  };
  const Seed seeds[] = {
      {text.start, false, true},
      {data.start, true, false},
      {stack.end - kPageSize, true, false},
  };
  for (const Seed& seed : seeds) {
    if (Status s = map_fresh_page(task, seed.va, seed.writable,
                                  seed.executable);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Result<Task*> ProcessManager::boot_init_process(const ProcImage& image) {
  Result<Task*> task = make_task();
  if (!task.ok()) return task;
  Task* t = task.value();
  Result<VirtAddr> cred = make_cred(0, 0);
  if (!cred.ok()) return cred.status();
  t->cred = cred.value();
  if (Status s = map_segments(*t, image, /*eager=*/true); !s.ok()) return s;
  current_[0] = t;  // PID 1 boots on the boot CPU
  machine_.set_sysreg_raw(sim::SysReg::TTBR0_EL1, ttbr0_value(*t));
  return t;
}

Result<Task*> ProcessManager::fork(Task& parent) {
  machine_.advance(costs_.fork_base);
  // wake_up_new_task placement: the child lands on the least-loaded
  // runqueue, decided before it enters the task table.
  unsigned target_cpu;
  {
    SpinGuard rq(rq_lock_);
    target_cpu = pick_cpu();
  }
  Result<Task*> child_r = make_task();
  if (!child_r.ok()) return child_r;
  Task* child = child_r.value();
  child->cpu = static_cast<u8>(target_cpu);
  child->vmas = parent.vmas;
  child->sighandlers = parent.sighandlers;
  child->signal_sp = parent.signal_sp;
  child->mmap_next = parent.mmap_next;
  child->cred = parent.cred;
  cred_get(child->cred);  // fork shares the cred (refcount bump only)

  // On any mid-copy failure (OOM while building the child's tree) the
  // half-built child must be reaped completely, or it would leak frames
  // and a task-table slot.
  auto abort_fork = [&](Status s) -> Result<Task*> {
    teardown_mm(*child);
    buddy_.free_pages(child->kstack, 2);
    cred_put(child->cred);
    child->alive = false;
    tasks_.erase(child->pid);
    return s;
  };

  // Copy the address space with COW semantics: downgrade writable parent
  // PTEs to read-only, then share every frame read-only with the child.
  for (const Vma& vma : parent.vmas) {
    for (VirtAddr va = vma.start; va < vma.end; va += kPageSize) {
      const PageTableManager::SwWalk w = kpt_.walk(parent.ttbr0, va);
      if (!w.ok || w.level != 3) continue;  // not faulted in yet
      const PhysAddr frame = sim::desc_out_addr(w.desc);
      const PageAttrs attrs = sim::decode_attrs(w.desc);
      if (attrs.write) {
        if (Status s = kpt_.set_page_attrs(
                parent.ttbr0, va, user_attrs(false, attrs.exec));
            !s.ok()) {
          return abort_fork(s);
        }
      }
      if (Status s = kpt_.map_page(child->ttbr0, va, frame,
                                   user_attrs(false, attrs.exec));
          !s.ok()) {
        return abort_fork(s);
      }
      frame_ref(frame);
    }
  }
  return child;
}

Status ProcessManager::teardown_mm(Task& task) {
  // zap_pte_range analogue: drop every mapped frame's reference, then free
  // the translation tree itself.  File-backed frames belong to the page
  // cache and are not released here.
  for (const Vma& vma : task.vmas) {
    for (VirtAddr va = vma.start; va < vma.end; va += kPageSize) {
      const PageTableManager::SwWalk w = kpt_.walk(task.ttbr0, va);
      if (!w.ok || w.level != 3) continue;
      if (vma.file_ino == 0) frame_unref(sim::desc_out_addr(w.desc));
    }
  }
  kpt_.free_user_tree(task.ttbr0, /*free_leaf_frames=*/false);
  task.ttbr0 = 0;
  task.vmas.clear();
  return Status::Ok();
}

Status ProcessManager::execve(Task& task, const ProcImage& image) {
  machine_.advance(costs_.execve_base);
  // prepare_creds + commit_creds: a fresh cred object is initialised (the
  // sensitive-word writes Table 2's exec-heavy workloads exhibit).
  const sim::Access64 uid =
      machine_.read64(task.cred + CredLayout::kUid * kWordSize);
  const sim::Access64 gid =
      machine_.read64(task.cred + CredLayout::kGid * kWordSize);
  if (!uid.ok || !gid.ok) return Status::Internal("cred read failed");
  Result<VirtAddr> fresh = make_cred(uid.value, gid.value);
  if (!fresh.ok()) return fresh.status();
  cred_put(task.cred);
  task.cred = fresh.value();

  if (Status s = teardown_mm(task); !s.ok()) return s;
  Result<PhysAddr> root = kpt_.alloc_user_root();
  if (!root.ok()) return root.status();
  task.ttbr0 = root.value();
  task.sighandlers.fill(0);
  if (Status s = map_segments(task, image, /*eager=*/false); !s.ok()) return s;
  if (current_[machine_.active_core()] == &task) {
    machine_.write_sysreg_el1(sim::SysReg::TTBR0_EL1, ttbr0_value(task));
  }
  return Status::Ok();
}

Status ProcessManager::exit_task(Task& task) {
  machine_.advance(costs_.exit_base);
  assert(task.alive);
  if (Status s = teardown_mm(task); !s.ok()) return s;
  buddy_.free_pages(task.kstack, 2);
  machine_.advance(costs_.page_free);
  task.kstack = 0;
  cred_put(task.cred);
  task.cred = 0;
  task.alive = false;
  const u32 pid = task.pid;
  for (Task*& slot : current_) {
    if (slot == &task) slot = nullptr;
  }
  tasks_.erase(pid);
  return Status::Ok();
}

void ProcessManager::switch_to(Task& task) {
  assert(task.alive);
  // SMP migration: execution follows the task to its scheduled CPU before
  // this becomes that CPU's runqueue switch.
  if (machine_.cores() > 1 && task.cpu != machine_.active_core()) {
    machine_.set_active_core(task.cpu);
  }
  Task*& running = current_[machine_.active_core()];
  if (running == &task) return;
  SpinGuard rq(rq_lock_);
  machine_.charge_context_switch();
  machine_.trace().record(machine_.account().cycles(),
                          sim::TraceKind::kCtxSwitch, task.asid, 0);
  touch_ws(costs_.ws_switch);
  // In a KVM guest, roughly every other blocking switch drains the
  // runqueue and idles: the WFI traps to the hypervisor (HCR_EL2.TWI),
  // costing a world switch — the dominant guest IPC overhead.
  if (machine_.guest_mode() && (++switch_serial_ & 1) == 0) {
    machine_.charge_wfi_trap();
  }
  running = &task;
  machine_.write_sysreg_el1(sim::SysReg::TTBR0_EL1, ttbr0_value(task));
}

Task* ProcessManager::find(u32 pid) {
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

u64 ProcessManager::live_tasks() const { return tasks_.size(); }

std::vector<Task*> ProcessManager::all_tasks() const {
  std::vector<Task*> out;
  out.reserve(tasks_.size());
  for (const auto& [pid, task] : tasks_) out.push_back(task.get());
  return out;
}

Vma* ProcessManager::vma_of(Task& task, VirtAddr va) {
  for (Vma& vma : task.vmas) {
    if (va >= vma.start && va < vma.end) return &vma;
  }
  return nullptr;
}

Status ProcessManager::handle_translation_fault(Task& task, VirtAddr va,
                                                bool write) {
  machine_.advance(costs_.page_fault_base);
  touch_ws(costs_.ws_fault);
  Vma* vma = vma_of(task, va);
  if (vma == nullptr) {
    return Status::Denied("segfault: no vma covers the address");
  }
  if (write && !vma->writable) return Status::Denied("segfault: write to RO vma");
  const VirtAddr page_va = page_align_down(va);
  if (vma->file_ino != 0) {
    // File-backed: install the (stable) page-cache frame — no allocation,
    // no zeroing, no frame reference (the page cache owns it).
    if (!file_pages_) return Status::Internal("no file page provider");
    const u64 pgoff = vma->file_pgoff + ((page_va - vma->start) >> kPageShift);
    Result<PhysAddr> frame = file_pages_(vma->file_ino, pgoff);
    if (!frame.ok()) return frame.status();
    return kpt_.map_page(task.ttbr0, page_va, frame.value(),
                         user_attrs(vma->writable, vma->executable));
  }
  return map_fresh_page(task, page_va, vma->writable, vma->executable);
}

Status ProcessManager::handle_cow_fault(Task& task, VirtAddr va) {
  machine_.advance(costs_.page_fault_base);
  touch_ws(costs_.ws_fault);
  Vma* vma = vma_of(task, va);
  if (vma == nullptr || !vma->writable) {
    return Status::Denied("segfault: write permission");
  }
  const VirtAddr page_va = page_align_down(va);
  const PageTableManager::SwWalk w = kpt_.walk(task.ttbr0, page_va);
  if (!w.ok || w.level != 3) return Status::Internal("cow: no mapping");
  const PhysAddr frame = sim::desc_out_addr(w.desc);
  const PageAttrs attrs = sim::decode_attrs(w.desc);

  if (frame_refs(frame) <= 1) {
    // Sole owner: write access can simply be restored.
    return kpt_.set_page_attrs(task.ttbr0, page_va,
                               user_attrs(true, attrs.exec));
  }
  Result<PhysAddr> copy = buddy_.alloc_page();
  if (!copy.ok()) return copy.status();
  machine_.advance(costs_.page_alloc);
  // copy_user_highpage analogue via the linear map.
  std::array<u8, kPageSize> buf;
  machine_.read_block_bulk(phys_to_virt(frame), buf.data(), kPageSize);
  machine_.write_block_bulk(phys_to_virt(copy.value()), buf.data(), kPageSize);
  frame_ref(copy.value());
  if (Status s = kpt_.map_page(task.ttbr0, page_va, copy.value(),
                               user_attrs(true, attrs.exec));
      !s.ok()) {
    return s;
  }
  frame_unref(frame);
  return Status::Ok();
}

Status ProcessManager::touch_page(VirtAddr va, bool write) {
  Task& task = current();
  for (int attempt = 0; attempt < 3; ++attempt) {
    sim::AccessType at;
    at.is_write = write;
    at.is_user = true;
    const sim::TranslateOutcome out = machine_.probe(page_align_down(va), at);
    if (out.ok) return Status::Ok();
    Status handled = Status::Internal("unhandled fault");
    if (out.fault.type == sim::FaultType::kTranslation) {
      handled = handle_translation_fault(task, va, write);
    } else if (out.fault.type == sim::FaultType::kPermission && write) {
      handled = handle_cow_fault(task, va);
    }
    if (!handled.ok()) return handled;
  }
  return Status::Internal("fault loop did not converge");
}

Status ProcessManager::user_write64(VirtAddr va, u64 value) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const sim::Access64 r = machine_.write64(va, value, /*user=*/true);
    if (r.ok) return Status::Ok();
    Status handled = Status::Internal("unhandled fault");
    if (r.fault.type == sim::FaultType::kTranslation) {
      handled = handle_translation_fault(current(), va, /*write=*/true);
    } else if (r.fault.type == sim::FaultType::kPermission) {
      handled = handle_cow_fault(current(), va);
    }
    if (!handled.ok()) return handled;
  }
  return Status::Internal("fault loop did not converge");
}

Result<u64> ProcessManager::user_read64(VirtAddr va) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const sim::Access64 r = machine_.read64(va, /*user=*/true);
    if (r.ok) return r.value;
    if (r.fault.type != sim::FaultType::kTranslation) {
      return Status::Denied("segfault on read");
    }
    if (Status s = handle_translation_fault(current(), va, /*write=*/false);
        !s.ok()) {
      return s;
    }
  }
  return Status::Internal("fault loop did not converge");
}

Result<VirtAddr> ProcessManager::mmap(Task& task, u64 len, bool writable) {
  machine_.advance(costs_.mmap_base);
  len = page_align_up(len);
  const VirtAddr base = task.mmap_next;
  task.mmap_next += len + kPageSize;  // guard gap
  task.vmas.push_back(Vma{base, base + len, writable, false, 0, 0});
  return base;  // pages fault in on demand
}

Result<VirtAddr> ProcessManager::mmap_file(Task& task, u64 ino, u64 len,
                                           bool writable) {
  machine_.advance(costs_.mmap_base);
  len = page_align_up(len);
  const VirtAddr base = task.mmap_next;
  task.mmap_next += len + kPageSize;
  task.vmas.push_back(Vma{base, base + len, writable, false, ino, 0});
  return base;
}

Status ProcessManager::munmap(Task& task, VirtAddr va, u64 len) {
  machine_.advance(costs_.munmap_base);
  touch_ws(costs_.ws_munmap);
  len = page_align_up(len);
  const Vma* vma = vma_of(task, va);
  const bool file_backed = vma != nullptr && vma->file_ino != 0;
  for (VirtAddr p = va; p < va + len; p += kPageSize) {
    PhysAddr old = 0;
    if (kpt_.unmap_page(task.ttbr0, p, &old).ok() && !file_backed) {
      frame_unref(old);
    }
  }
  for (auto it = task.vmas.begin(); it != task.vmas.end(); ++it) {
    if (it->start == va && it->end == va + len) {
      task.vmas.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("munmap: no exact vma match");
}

Status ProcessManager::sigaction(Task& task, unsigned sig, u64 handler) {
  if (sig >= task.sighandlers.size()) return Status::Invalid("bad signal");
  machine_.advance(costs_.sigaction_base);
  task.sighandlers[sig] = handler;
  return Status::Ok();
}

Status ProcessManager::deliver_signal(Task& task, unsigned sig) {
  if (sig >= task.sighandlers.size()) return Status::Invalid("bad signal");
  if (task.sighandlers[sig] == 0) return Status::Ok();  // default: ignore
  machine_.advance(costs_.signal_deliver_base);
  assert(current_[machine_.active_core()] == &task &&
         "signal delivery modelled on-CPU only");
  // Push the signal frame (saved context) onto the user stack, run the
  // handler (empty body, LMbench-style), then restore from the frame.
  const VirtAddr frame = task.signal_sp - 16 * kWordSize;
  for (unsigned w = 0; w < 16; ++w) {
    if (Status s = user_write64(frame + w * kWordSize, 0x5160'0000 + w);
        !s.ok()) {
      return s;
    }
  }
  for (unsigned w = 0; w < 16; ++w) {
    Result<u64> r = user_read64(frame + w * kWordSize);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

}  // namespace hn::kernel
