// Loadable kernel modules — the paper's motivating attack surface ("buggy
// device drivers", §1) made concrete.
//
// Loading a module is the one legitimate runtime operation that needs a
// writable-then-executable memory transition, which makes it the acid
// test for Hypersec's W^X policy (§5.2.1): the loader must stage the
// module text in writable pages, then flip them executable+read-only
// through the page-table write path.  A rootkit that instead tries to
// make live module text writable (to patch it) is denied.
//
// Module "code" in this model is a descriptor table: an array of
// (hook-point, handler-cookie) words the kernel consults, enough to model
// both benign drivers and rootkit modules hooking kernel operations.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/kpt.h"
#include "sim/machine.h"

namespace hn::kernel {

struct ModuleImage {
  std::string name;
  /// The module's "text": handler cookies, one per exported hook.
  std::vector<u64> text_words;
  /// Static data words (stay writable).
  std::vector<u64> data_words;
};

struct LoadedModule {
  std::string name;
  VirtAddr text_va = 0;   // RX after load completes
  u64 text_pages = 0;
  VirtAddr data_va = 0;   // RW
  u64 data_pages = 0;
};

class ModuleLoader {
 public:
  /// How text seals RX / unseals RW: Hypersec hypercall under Hypernel,
  /// direct descriptor edits otherwise.
  using SealFn = std::function<Status(PhysAddr base, u64 pages, bool seal)>;

  ModuleLoader(sim::Machine& machine, BuddyAllocator& buddy,
               PageTableManager& kpt, const KernelCosts& costs)
      : machine_(machine), buddy_(buddy), kpt_(kpt), costs_(costs) {}

  void set_sealer(SealFn fn) { seal_ = std::move(fn); }

  /// Lifecycle observers for security apps: `on_load_sealed` fires after a
  /// module's text is sealed RX (so staging writes are never monitored),
  /// `on_before_unload` fires before the text unseals and the frames
  /// return to the pool (so recycled frames are never monitored).
  using ModuleObserver = std::function<void(const LoadedModule&)>;
  void set_observers(ModuleObserver on_load_sealed,
                     ModuleObserver on_before_unload) {
    on_load_sealed_ = std::move(on_load_sealed);
    on_before_unload_ = std::move(on_before_unload);
  }

  /// insmod: allocate module memory, copy the image in while writable,
  /// then seal the text RX (write -> exec transition through the active
  /// PtWriter — hypercalls under Hypernel).
  Result<LoadedModule> load(const ModuleImage& image);

  /// rmmod: unmap and free.  The text pages are returned to RW data
  /// before the frames go back to the pool.
  Status unload(const std::string& name);

  [[nodiscard]] const LoadedModule* find(const std::string& name) const;
  [[nodiscard]] u64 loaded_count() const { return modules_.size(); }
  [[nodiscard]] const std::map<std::string, LoadedModule>& all() const {
    return modules_;
  }

  /// Invoke hook `index` of a loaded module: a charged read of the
  /// handler cookie plus the dispatch cost — how the kernel would call
  /// through a driver's ops table.
  Result<u64> call_hook(const std::string& name, u64 index);

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(modules_.size());
    for (const auto& [name, mod] : modules_) {
      w.put_string(name);
      w.put_string(mod.name);
      w.put_u64(mod.text_va);
      w.put_u64(mod.text_pages);
      w.put_u64(mod.data_va);
      w.put_u64(mod.data_pages);
    }
    w.put_u64(frames_.size());
    for (const auto& [name, frames] : frames_) {
      w.put_string(name);
      w.put_u64(frames.size());
      for (const PhysAddr pa : frames) w.put_u64(pa);
    }
  }

  void restore_state(sim::SnapReader& r) {
    r.section("modules");
    const u64 nmods = r.get_count("module");
    modules_.clear();
    for (u64 i = 0; r.ok() && i < nmods; ++i) {
      std::string key = r.get_string();
      LoadedModule mod;
      mod.name = r.get_string();
      mod.text_va = r.get_u64();
      mod.text_pages = r.get_u64();
      mod.data_va = r.get_u64();
      mod.data_pages = r.get_u64();
      modules_.emplace(std::move(key), std::move(mod));
    }
    const u64 nframes = r.get_count("module frame list");
    frames_.clear();
    for (u64 i = 0; r.ok() && i < nframes; ++i) {
      std::string key = r.get_string();
      const u64 count = r.get_count("module frame");
      std::vector<PhysAddr> frames;
      frames.reserve(r.ok() ? count : 0);
      for (u64 f = 0; r.ok() && f < count; ++f) frames.push_back(r.get_u64());
      frames_.emplace(std::move(key), std::move(frames));
    }
  }

 private:
  /// Linear-map attribute change over a whole region.
  Status set_region_attrs(VirtAddr va, u64 pages, const sim::PageAttrs& attrs);

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  PageTableManager& kpt_;
  const KernelCosts& costs_;
  SealFn seal_;
  ModuleObserver on_load_sealed_;
  ModuleObserver on_before_unload_;
  std::map<std::string, LoadedModule> modules_;
  std::map<std::string, std::vector<PhysAddr>> frames_;  // per module
};

}  // namespace hn::kernel
