// The simkernel façade: a miniature monolithic kernel running on the
// simulated machine, exposing the syscall surface the LMbench-style
// benchmarks (Table 1) and application workloads (Figure 6 / Table 2)
// exercise.
//
// Every syscall charges SVC entry/exit, then performs its work through
// charged machine accesses; the kernel's page-table writes go through the
// active PtWriter, so the same kernel runs unmodified under Native,
// KVM-guest, and Hypernel configurations.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/ipc.h"
#include "kernel/kpt.h"
#include "kernel/modules.h"
#include "kernel/process.h"
#include "kernel/slab.h"
#include "kernel/vfs.h"
#include "sim/machine.h"

namespace hn::kernel {

struct KernelConfig {
  /// Stock-kernel 2 MiB section linear map vs the 4 KiB patched map (§6.2).
  bool use_sections = false;
  /// Upper bound of the linear map / buddy pool.  0 = all of DRAM.
  /// The Hypernel configuration sets this to the secure-space base so the
  /// secure region is simply never mapped (§5.2).
  PhysAddr linear_limit = 0;
  ProcImage image;
  KernelCosts costs;
  /// Scheduler tick period (250 Hz at the A57's 1.15 GHz).
  Cycles timer_period = 4'600'000;
};

class Kernel {
 public:
  Kernel(sim::Machine& machine, const KernelConfig& config);

  /// Bring the system up: linear map, TTBR1, IRQ vector, rootfs, PID 1.
  Status boot();

  // --- Component access (substrate for Hypersec / KVM / secapps) ----------
  sim::Machine& machine() { return machine_; }
  BuddyAllocator& buddy() { return *buddy_; }
  PageTableManager& kpt() { return *kpt_; }
  Vfs& vfs() { return *vfs_; }
  ProcessManager& procs() { return *procs_; }
  IpcManager& ipc() { return *ipc_; }
  SlabCache& cred_slab() { return *cred_slab_; }
  SlabCache& dentry_slab() { return *dentry_slab_; }
  ModuleLoader& modules() { return *modules_; }
  [[nodiscard]] const KernelConfig& config() const { return config_; }
  [[nodiscard]] const KernelCosts& costs() const { return config_.costs; }

  /// Switch the page-table write policy (Hypernel boot: direct -> HVC).
  void use_hypercall_pt_writes();
  /// Forward MBM interrupts to Hypersec from the kernel IRQ handler (§6.2).
  void enable_mbm_irq_forwarding() { forward_mbm_irq_ = true; }

  /// Object lifetime hooks for security applications (§5.3 step 1).
  void set_object_hooks(ObjectKind kind, SlabCache::ObjectHook on_alloc,
                        SlabCache::ObjectHook on_free);

  // --- Syscalls (each charges SVC entry/exit) --------------------------------
  Result<StatInfo> sys_stat(std::string_view path);
  Result<u64> sys_creat(std::string_view path);
  Status sys_unlink(std::string_view path);
  Status sys_rename(std::string_view from, std::string_view to);
  Status sys_mkdir(std::string_view path);
  Status sys_write(u64 ino, u64 offset, const void* data, u64 len);
  Status sys_read(u64 ino, u64 offset, void* out, u64 len);

  Status sys_sigaction(unsigned sig, u64 handler);
  Status sys_kill_self(unsigned sig);

  Result<u32> sys_pipe();
  Status sys_pipe_write(u32 id, VirtAddr user_buf, u64 len);
  Result<u64> sys_pipe_read(u32 id, VirtAddr user_buf, u64 len);
  Result<u32> sys_socketpair();
  Status sys_socket_send(u32 id, unsigned end, VirtAddr user_buf, u64 len);
  Result<u64> sys_socket_recv(u32 id, unsigned end, VirtAddr user_buf, u64 len);

  Result<u32> sys_fork();           // returns child pid
  Status sys_execve();              // re-exec current image
  Status sys_exit();                // current task exits (caller reschedules)
  Status sys_setuid(u64 uid);
  Result<LoadedModule> sys_insmod(const ModuleImage& image);
  Status sys_rmmod(const std::string& name);
  Result<u64> sys_module_call(const std::string& name, u64 hook);

  Result<VirtAddr> sys_mmap(u64 len, bool writable);
  Result<VirtAddr> sys_mmap_file(u64 ino, u64 len, bool writable = false);
  Status sys_munmap(VirtAddr va, u64 len);

  /// EL0 compute: charge cycles in slices, delivering scheduler ticks at
  /// the configured period (timer IRQs are where KVM's exit cost shows on
  /// compute-bound workloads).
  void run_user_compute(Cycles cycles);
  /// EL0 memory traffic: touch `count` user words across `span_pages`
  /// pages of the current task's heap (faulting them in on first use).
  Status run_user_memory(u64 count, u64 span_pages, u64 seed);

  /// Scattered loads/stores over the kernel-structures arena: the
  /// working-set model that gives kernel paths realistic TLB behaviour
  /// (see KernelCosts::ws_*).
  void touch_kernel_ws(u64 words);

  [[nodiscard]] u64 timer_ticks() const { return timer_ticks_; }
  [[nodiscard]] PhysAddr linear_limit() const { return linear_limit_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Fixed component order; handler wiring (PtWriter choice, hooks, IRQ
  // forwarding) is established by boot and persists across restore.

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(booted_);
    w.put_u64(linear_limit_);
    w.put_u64(timer_ticks_);
    // One timer deadline per core (count pinned by the machine config,
    // which the snapshot's config digest already covers).
    w.put_u64(next_tick_at_.size());
    for (const Cycles t : next_tick_at_) w.put_u64(t);
    w.put_u64(ws_arena_);
    w.put_u64(ws_arena_pages_);
    w.put_u64(ws_cursor_);
    buddy_->save_state(w);
    kpt_->save_state(w);
    cred_slab_->save_state(w);
    dentry_slab_->save_state(w);
    vfs_->save_state(w);
    procs_->save_state(w);
    ipc_->save_state(w);
    modules_->save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("kernel");
    booted_ = r.get_bool();
    const PhysAddr limit = r.get_u64();
    if (r.ok() && limit != linear_limit_) {
      r.fail("linear limit " + std::to_string(limit) +
             " does not match this configuration");
      return;
    }
    timer_ticks_ = r.get_u64();
    const u64 ntimers = r.get_count("timer deadline");
    next_tick_at_.assign(r.ok() ? ntimers : 0, 0);
    for (Cycles& t : next_tick_at_) t = r.get_u64();
    ws_arena_ = r.get_u64();
    ws_arena_pages_ = r.get_u64();
    ws_cursor_ = r.get_u64();
    buddy_->restore_state(r);
    kpt_->restore_state(r);
    cred_slab_->restore_state(r);
    dentry_slab_->restore_state(r);
    vfs_->restore_state(r);
    procs_->restore_state(r);
    ipc_->restore_state(r);
    modules_->restore_state(r);
  }

 private:
  class SvcScope;
  void on_irq(unsigned line);

  sim::Machine& machine_;
  KernelConfig config_;
  PhysAddr linear_limit_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<PageTableManager> kpt_;
  std::unique_ptr<SlabCache> cred_slab_;
  std::unique_ptr<SlabCache> dentry_slab_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<ProcessManager> procs_;
  std::unique_ptr<IpcManager> ipc_;
  std::unique_ptr<ModuleLoader> modules_;
  std::unique_ptr<HypercallPtWriter> hvc_writer_;
  bool forward_mbm_irq_ = false;
  bool booted_ = false;
  u64 timer_ticks_ = 0;
  std::vector<Cycles> next_tick_at_;  // per-core timer deadline
  PhysAddr ws_arena_ = 0;       // kernel-structures arena (working set)
  u64 ws_arena_pages_ = 0;
  u64 ws_cursor_ = 0;
  obs::Counter obs_syscalls_;
};

}  // namespace hn::kernel
