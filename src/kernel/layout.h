// Kernel virtual-memory layout (AArch64-Linux-like).
//
// The kernel owns the upper VA half via TTBR1: a linear map of all normal
// physical memory at kKernelVaBase + PA.  User processes own the lower
// half via per-process TTBR0 trees.  The secure space (top of DRAM) is
// deliberately *absent* from the linear map under Hypernel (§5.2).
#pragma once

#include "common/types.h"

namespace hn::kernel {

/// Physical layout of the kernel image at the bottom of DRAM.
inline constexpr PhysAddr kImageBase = 0x0;
inline constexpr u64 kTextSize = 512 * 1024;   // kernel code (RX)
inline constexpr u64 kRodataSize = 256 * 1024; // constants (RO)
inline constexpr u64 kDataSize = 256 * 1024;   // static data (RW)
inline constexpr PhysAddr kTextBase = kImageBase;
inline constexpr PhysAddr kRodataBase = kTextBase + kTextSize;
inline constexpr PhysAddr kDataBase = kRodataBase + kRodataSize;
inline constexpr PhysAddr kImageEnd = kDataBase + kDataSize;  // 1 MiB

/// Dynamic allocations (buddy pool) start at 2 MiB to keep the image
/// section-aligned for the 2 MiB-block mapping mode (§6.2).
inline constexpr PhysAddr kBuddyPoolBase = 2 * 1024 * 1024;

/// Control-flow anchor tables inside the kernel image — the targets the
/// kernel-CFI monitor registers (Camouflage-style vector/table watch).
///
/// The syscall dispatch table lives in rodata; the exception-vector table
/// occupies the top page of kernel text (VBAR_EL1 points at it).  Both are
/// populated by the boot ROM before the first instruction, so their
/// materialization is uncharged.
inline constexpr PhysAddr kSyscallTableBase = kRodataBase + 0x1000;
inline constexpr u64 kSyscallTableEntries = 64;
inline constexpr PhysAddr kVectorTableBase = kTextBase + kTextSize - kPageSize;
inline constexpr u64 kVectorTableEntries = 16;

/// Well-known handler cookies: addresses inside kernel text that the
/// legitimate table entries point at.  Any other value in a table slot is
/// a control-flow hijack.
constexpr u64 syscall_entry_cookie(u64 nr) {
  return kKernelVaBase + kTextBase + 0x4000 + nr * 0x40;
}
constexpr u64 vector_entry_cookie(u64 slot) {
  return kKernelVaBase + kTextBase + 0x2000 + slot * 0x80;
}

/// Linear-map address of a physical address.
constexpr VirtAddr phys_to_virt(PhysAddr pa) { return kKernelVaBase + pa; }
constexpr PhysAddr virt_to_phys(VirtAddr va) { return va - kKernelVaBase; }
constexpr bool is_linear_va(VirtAddr va) { return va >= kKernelVaBase; }

/// Canonical user-space layout for the synthetic process image.
inline constexpr VirtAddr kUserTextBase = 0x0000'0000'0040'0000ull;
inline constexpr VirtAddr kUserHeapBase = 0x0000'0000'1000'0000ull;
inline constexpr VirtAddr kUserMmapBase = 0x0000'0000'4000'0000ull;
inline constexpr VirtAddr kUserStackTop = 0x0000'0000'7FFF'F000ull;

}  // namespace hn::kernel
