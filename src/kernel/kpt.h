// Kernel stage-1 page-table management.
//
// All trees (the shared TTBR1 kernel tree and per-process TTBR0 user
// trees) are real 4-level descriptor trees in simulated memory.  Runtime
// descriptor *writes* go through the pluggable PtWriter (direct stores vs
// Hypersec hypercalls); descriptor *reads* are ordinary charged EL1 loads
// through the linear map.  The boot-time linear map is built with the MMU
// off (direct physical stores, uncharged), as a boot loader would.
#pragma once

#include <map>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/pt_write.h"
#include "sim/machine.h"
#include "sim/pagetable.h"

namespace hn::kernel {

class PageTableManager {
 public:
  PageTableManager(sim::Machine& machine, BuddyAllocator& buddy);

  /// Swap the descriptor-write policy (Hypernel boot installs the
  /// hypercall writer after Hypersec takes over).
  void set_writer(PtWriter& writer) { writer_ = &writer; }
  PtWriter& writer() { return *writer_; }

  /// Build the kernel TTBR1 tree mapping the linear region [0, limit):
  /// text RX, rodata RO, data + rest RW, all cacheable; `use_sections`
  /// selects 2 MiB block descriptors for the post-image region (the stock
  /// kernel behaviour §6.2 patches away).  MMU-off construction.
  Result<PhysAddr> build_kernel_linear_map(PhysAddr limit, bool use_sections);

  /// Allocate a zeroed top-level table for a user address space.
  Result<PhysAddr> alloc_user_root();
  void free_user_root(PhysAddr root);

  // --- Runtime mapping operations (charged; through the PtWriter) ---------
  Status map_page(PhysAddr root, VirtAddr va, PhysAddr pa,
                  const sim::PageAttrs& attrs);
  Status unmap_page(PhysAddr root, VirtAddr va, PhysAddr* old_pa = nullptr);
  /// Rewrite the attribute bits of an existing leaf mapping.
  Status set_page_attrs(PhysAddr root, VirtAddr va, const sim::PageAttrs& attrs);

  /// Software walk (charged loads).  level==3 page or level==2 block.
  struct SwWalk {
    bool ok = false;
    u64 desc = 0;
    unsigned level = 0;
    PhysAddr desc_pa = 0;  // where the leaf descriptor lives
  };
  SwWalk walk(PhysAddr root, VirtAddr va);

  /// Tear down a user tree: every leaf frame (optionally) and every table
  /// page returns to the buddy; table retirements notify the PtWriter.
  void free_user_tree(PhysAddr root, bool free_leaf_frames);

  [[nodiscard]] PhysAddr kernel_root() const { return kernel_root_; }
  [[nodiscard]] bool is_pt_page(PhysAddr pa) const {
    return pt_pages_.contains(page_align_down(pa));
  }
  /// Registered table pages with their walk level (0 = root).
  [[nodiscard]] const std::map<PhysAddr, unsigned>& pt_pages() const {
    return pt_pages_;
  }
  [[nodiscard]] u64 pt_page_count() const { return pt_pages_.size(); }

  /// Convenience: change linear-map attributes of the page frame at `pa`
  /// (used by tests and by Hypersec acting at EL2 via its own path).
  Status protect_linear(PhysAddr pa, const sim::PageAttrs& attrs);

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // The descriptor trees themselves live in simulated memory (restored via
  // the snapshot's pages); only the host-side registry is serialized.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(kernel_root_);
    w.put_u64(pt_pages_.size());
    for (const auto& [pa, level] : pt_pages_) {
      w.put_u64(pa);
      w.put_u32(level);
    }
  }

  void restore_state(sim::SnapReader& r) {
    r.section("kpt");
    kernel_root_ = r.get_u64();
    const u64 n = r.get_count("page-table page");
    pt_pages_.clear();
    for (u64 i = 0; r.ok() && i < n; ++i) {
      const PhysAddr pa = r.get_u64();
      pt_pages_.emplace_hint(pt_pages_.end(), pa, r.get_u32());
    }
  }

 private:
  /// Allocate + zero + register a new table page (runtime, charged).
  Result<PhysAddr> alloc_table_page(unsigned level);
  /// Split a 2 MiB block descriptor into a level-3 table of 4 KiB pages
  /// with identical attributes (the stock kernel's pmd split).
  Status split_block(const SwWalk& w);
  /// Boot-time variant: direct physical stores, no charges, no writer.
  Result<PhysAddr> alloc_table_page_boot(unsigned level);
  u64 read_desc(PhysAddr table_pa, u64 index);

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  DirectPtWriter direct_writer_;
  PtWriter* writer_;
  PhysAddr kernel_root_ = 0;
  std::map<PhysAddr, unsigned> pt_pages_;  // table page -> walk level
};

}  // namespace hn::kernel
