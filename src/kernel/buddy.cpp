#include "kernel/buddy.h"

#include <algorithm>
#include <cassert>

namespace hn::kernel {

BuddyAllocator::BuddyAllocator(PhysAddr base, u64 size) : base_(base) {
  assert(is_page_aligned(base) && is_page_aligned(size));
  total_pages_ = size >> kPageShift;
  block_order_.assign(total_pages_, 0);
  allocated_.assign(total_pages_, false);

  // Seed the free lists with maximal naturally-aligned blocks.
  u64 index = 0;
  while (index < total_pages_) {
    unsigned order = kMaxOrder;
    while (order > 0 && ((index & ((u64{1} << order) - 1)) != 0 ||
                         index + (u64{1} << order) > total_pages_)) {
      --order;
    }
    free_lists_[order].push_back(index);
    index += u64{1} << order;
  }
  free_pages_ = total_pages_;
}

bool BuddyAllocator::take_free_block(u64 index, unsigned order) {
  auto& list = free_lists_[order];
  auto it = std::find(list.begin(), list.end(), index);
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}

Result<PhysAddr> BuddyAllocator::alloc_pages(unsigned order) {
  if (order > kMaxOrder) {
    return Status::Invalid("buddy: order exceeds kMaxOrder");
  }
  SpinGuard zone(lock_);
  unsigned o = order;
  while (o <= kMaxOrder && free_lists_[o].empty()) ++o;
  if (o > kMaxOrder) {
    return Status::OutOfMemory("buddy: no free block of requested order");
  }
  u64 index = free_lists_[o].back();
  free_lists_[o].pop_back();
  // Split down to the requested order, returning the upper halves.
  while (o > order) {
    --o;
    free_lists_[o].push_back(index + (u64{1} << o));
  }
  allocated_[index] = true;
  block_order_[index] = static_cast<u8>(order);
  free_pages_ -= u64{1} << order;
  obs_alloc_pages_.add(u64{1} << order);
  return frame_addr(index);
}

void BuddyAllocator::free_pages(PhysAddr pa, unsigned order) {
  assert(owns(pa) && is_page_aligned(pa));
  SpinGuard zone(lock_);
  u64 index = frame_index(pa);
  assert(allocated_[index] && block_order_[index] == order &&
         "free_pages: not an allocated block head of this order");
  allocated_[index] = false;
  free_pages_ += u64{1} << order;
  obs_free_pages_.add(u64{1} << order);
  if (free_hook_) free_hook_(pa, order);

  // Coalesce with the buddy while possible.
  unsigned o = order;
  while (o < kMaxOrder) {
    const u64 buddy = index ^ (u64{1} << o);
    if (buddy >= total_pages_ || !take_free_block(buddy, o)) break;
    index = std::min(index, buddy);
    ++o;
  }
  free_lists_[o].push_back(index);
}

}  // namespace hn::kernel
