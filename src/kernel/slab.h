// Slab caches for the monitored kernel objects (cred, dentry).
//
// Each cache owns dedicated page frames carved into fixed-size objects —
// the property Hypersec relies on when it flips a monitored object's page
// to non-cacheable: only same-kind objects share the page.  Object
// alloc/free hooks are the kernel instrumentation points through which a
// security application learns object lifetimes (§5.3 step 1).
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/spinlock.h"
#include "sim/machine.h"

namespace hn::kernel {

class SlabCache {
 public:
  using ObjectHook = std::function<void(VirtAddr va)>;

  SlabCache(sim::Machine& machine, BuddyAllocator& buddy,
            const KernelCosts& costs, ObjectKind kind)
      : machine_(machine), buddy_(buddy), costs_(costs), kind_(kind),
        obj_bytes_(object_words(kind) * kWordSize) {
    lock_.bind(machine);
  }

  void set_hooks(ObjectHook on_alloc, ObjectHook on_free) {
    on_alloc_ = std::move(on_alloc);
    on_free_ = std::move(on_free);
  }

  /// Allocate a zeroed object; returns its linear-map VA.  The alloc hook
  /// fires after zeroing, before the caller initialises fields — so field
  /// initialisation is already monitored, as in the paper's experiment.
  Result<VirtAddr> alloc() {
    SpinGuard list(lock_);
    machine_.advance(costs_.slab_alloc);
    if (freelist_.empty()) {
      if (Status s = grow(); !s.ok()) return s;
    }
    const VirtAddr va = freelist_.back();
    freelist_.pop_back();
    ++live_;
    for (u64 off = 0; off < obj_bytes_; off += kWordSize) {
      machine_.write64(va + off, 0);
    }
    if (on_alloc_) on_alloc_(va);
    return va;
  }

  void free(VirtAddr va) {
    SpinGuard list(lock_);
    machine_.advance(costs_.slab_free);
    if (on_free_) on_free_(va);
    freelist_.push_back(va);
    --live_;
  }

  [[nodiscard]] ObjectKind kind() const { return kind_; }
  [[nodiscard]] u64 object_bytes() const { return obj_bytes_; }
  [[nodiscard]] u64 live_objects() const { return live_; }
  [[nodiscard]] const std::vector<PhysAddr>& pages() const { return pages_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Freelist order matters (LIFO reuse) and is preserved exactly.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(freelist_.size());
    for (const VirtAddr va : freelist_) w.put_u64(va);
    w.put_u64(pages_.size());
    for (const PhysAddr pa : pages_) w.put_u64(pa);
    w.put_u64(live_);
    lock_.save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("slab");
    const u64 nfree = r.get_count("freelist");
    freelist_.clear();
    freelist_.reserve(r.ok() ? nfree : 0);
    for (u64 i = 0; r.ok() && i < nfree; ++i) freelist_.push_back(r.get_u64());
    const u64 npages = r.get_count("slab page");
    pages_.clear();
    pages_.reserve(r.ok() ? npages : 0);
    for (u64 i = 0; r.ok() && i < npages; ++i) pages_.push_back(r.get_u64());
    live_ = r.get_u64();
    lock_.restore_state(r);
  }

 private:
  Status grow() {
    machine_.advance(costs_.page_alloc);
    Result<PhysAddr> page = buddy_.alloc_page();
    if (!page.ok()) return page.status();
    pages_.push_back(page.value());
    for (u64 off = 0; off + obj_bytes_ <= kPageSize; off += obj_bytes_) {
      freelist_.push_back(phys_to_virt(page.value() + off));
    }
    return Status::Ok();
  }

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  const KernelCosts& costs_;
  ObjectKind kind_;
  u64 obj_bytes_;
  std::vector<VirtAddr> freelist_;
  std::vector<PhysAddr> pages_;
  SpinLock lock_;  // per-cache list lock, as in a real slab
  u64 live_ = 0;
  ObjectHook on_alloc_;
  ObjectHook on_free_;
};

}  // namespace hn::kernel
