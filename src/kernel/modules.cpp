#include "kernel/modules.h"

#include <cassert>

#include "kernel/layout.h"

namespace hn::kernel {

Status ModuleLoader::set_region_attrs(VirtAddr va, u64 pages,
                                      const sim::PageAttrs& attrs) {
  for (u64 p = 0; p < pages; ++p) {
    if (Status s = kpt_.protect_linear(virt_to_phys(va) + p * kPageSize, attrs);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Result<LoadedModule> ModuleLoader::load(const ModuleImage& image) {
  if (modules_.contains(image.name)) {
    return Status::AlreadyExists("module already loaded: " + image.name);
  }
  if (image.text_words.empty()) {
    return Status::Invalid("module has no text");
  }
  machine_.advance(costs_.page_alloc);

  LoadedModule mod;
  mod.name = image.name;
  mod.text_pages = page_align_up(image.text_words.size() * kWordSize) / kPageSize;
  mod.data_pages =
      image.data_words.empty()
          ? 0
          : page_align_up(image.data_words.size() * kWordSize) / kPageSize;

  std::vector<PhysAddr>& frames = frames_[image.name];
  // Module regions need contiguity through the linear map: allocate one
  // naturally-aligned buddy block per region.
  auto alloc_region = [&](u64 pages) -> Result<VirtAddr> {
    unsigned order = 0;
    while ((u64{1} << order) < pages) ++order;
    Result<PhysAddr> block = buddy_.alloc_pages(order);
    if (!block.ok()) return block.status();
    frames.push_back(block.value());
    return phys_to_virt(block.value());
  };

  Result<VirtAddr> text = alloc_region(mod.text_pages);
  if (!text.ok()) return text.status();
  mod.text_va = text.value();
  if (mod.data_pages > 0) {
    Result<VirtAddr> data = alloc_region(mod.data_pages);
    if (!data.ok()) return data.status();
    mod.data_va = data.value();
  }

  // Stage the image while the region is ordinary writable kernel data.
  for (size_t i = 0; i < image.text_words.size(); ++i) {
    if (!machine_.write64(mod.text_va + i * kWordSize, image.text_words[i]).ok) {
      return Status::Internal("module text staging failed");
    }
  }
  for (size_t i = 0; i < image.data_words.size(); ++i) {
    if (!machine_.write64(mod.data_va + i * kWordSize, image.data_words[i]).ok) {
      return Status::Internal("module data staging failed");
    }
  }

  // Seal the text: the W -> X transition (write dropped, exec granted).
  // Under Hypernel this is the kModuleSeal hypercall; the sealer was
  // installed by the kernel at boot.
  if (!seal_) {
    if (Status s = set_region_attrs(
            mod.text_va, mod.text_pages,
            sim::PageAttrs{.write = false, .exec = true});
        !s.ok()) {
      return s;
    }
  } else if (Status s = seal_(virt_to_phys(mod.text_va), mod.text_pages, true);
             !s.ok()) {
    return s;
  }

  machine_.advance(costs_.page_alloc);  // symbol/relocation bookkeeping
  modules_[image.name] = mod;
  if (on_load_sealed_) on_load_sealed_(mod);
  return mod;
}

Status ModuleLoader::unload(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return Status::NotFound("no such module");
  const LoadedModule& mod = it->second;
  if (on_before_unload_) on_before_unload_(mod);

  // Unseal text back to plain data before the frames return to the pool.
  if (!seal_) {
    if (Status s = set_region_attrs(
            mod.text_va, mod.text_pages,
            sim::PageAttrs{.write = true, .exec = false});
        !s.ok()) {
      return s;
    }
  } else if (Status s =
                 seal_(virt_to_phys(mod.text_va), mod.text_pages, false);
             !s.ok()) {
    return s;
  }

  for (const PhysAddr block : frames_[name]) {
    unsigned order = 0;
    const u64 pages =
        block == virt_to_phys(mod.text_va) ? mod.text_pages : mod.data_pages;
    while ((u64{1} << order) < pages) ++order;
    buddy_.free_pages(block, order);
  }
  frames_.erase(name);
  modules_.erase(it);
  machine_.advance(costs_.page_free);
  return Status::Ok();
}

const LoadedModule* ModuleLoader::find(const std::string& name) const {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : &it->second;
}

Result<u64> ModuleLoader::call_hook(const std::string& name, u64 index) {
  const LoadedModule* mod = find(name);
  if (mod == nullptr) return Status::NotFound("no such module");
  if (index * kWordSize >= mod->text_pages * kPageSize) {
    return Status::OutOfRange("hook index outside module text");
  }
  machine_.advance(40);  // indirect-call dispatch
  const sim::Access64 r = machine_.read64(mod->text_va + index * kWordSize);
  if (!r.ok) return Status::Internal("module text unreadable");
  return r.value;
}

}  // namespace hn::kernel
