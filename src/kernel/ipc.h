// Pipes and loopback sockets.
//
// Both copy payloads through kernel buffer pages in simulated memory, so
// IPC latency includes real (charged) copies; sockets additionally model
// protocol-stack work and sk_buff header writes.  Blocking semantics are
// driven by the caller (the benchmark orchestrates reader/writer task
// switches, which is where Hypernel's TTBR0 trap cost appears).
#pragma once

#include <map>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "sim/machine.h"

namespace hn::kernel {

class IpcManager {
 public:
  IpcManager(sim::Machine& machine, BuddyAllocator& buddy,
             const KernelCosts& costs)
      : machine_(machine), buddy_(buddy), costs_(costs) {}
  ~IpcManager();

  IpcManager(const IpcManager&) = delete;
  IpcManager& operator=(const IpcManager&) = delete;

  Result<u32> create_pipe();
  void destroy_pipe(u32 id);
  /// Copy `len` bytes (word multiple) into / out of the pipe buffer.
  Status pipe_write(u32 id, const void* data, u64 len);
  Result<u64> pipe_read(u32 id, void* out, u64 len);
  [[nodiscard]] u64 pipe_fill(u32 id) const;

  Result<u32> create_socket_pair();
  void destroy_socket_pair(u32 id);
  Status socket_send(u32 id, unsigned end, const void* data, u64 len);
  Result<u64> socket_recv(u32 id, unsigned end, void* out, u64 len);

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(pipes_.size());
    for (const auto& [id, ch] : pipes_) {
      w.put_u32(id);
      w.put_u64(ch.buf);
      w.put_u64(ch.fill);
    }
    w.put_u64(sockets_.size());
    for (const auto& [id, pair] : sockets_) {
      w.put_u32(id);
      for (const Channel& ch : pair.dir) {
        w.put_u64(ch.buf);
        w.put_u64(ch.fill);
      }
      w.put_u64(pair.skb);
    }
    w.put_u32(next_id_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("ipc");
    const u64 npipes = r.get_count("pipe");
    pipes_.clear();
    for (u64 i = 0; r.ok() && i < npipes; ++i) {
      const u32 id = r.get_u32();
      Channel ch;
      ch.buf = r.get_u64();
      ch.fill = r.get_u64();
      pipes_.emplace(id, ch);
    }
    const u64 nsockets = r.get_count("socket pair");
    sockets_.clear();
    for (u64 i = 0; r.ok() && i < nsockets; ++i) {
      const u32 id = r.get_u32();
      SocketPair pair;
      for (Channel& ch : pair.dir) {
        ch.buf = r.get_u64();
        ch.fill = r.get_u64();
      }
      pair.skb = r.get_u64();
      sockets_.emplace(id, pair);
    }
    next_id_ = r.get_u32();
  }

 private:
  struct Channel {
    PhysAddr buf = 0;  // one page
    u64 fill = 0;
  };
  struct SocketPair {
    Channel dir[2];     // payload rings, one per direction
    PhysAddr skb = 0;   // shared sk_buff metadata page
  };

  Status channel_write(Channel& ch, const void* data, u64 len);
  Result<u64> channel_read(Channel& ch, void* out, u64 len);

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  const KernelCosts& costs_;
  std::map<u32, Channel> pipes_;
  std::map<u32, SocketPair> sockets_;
  u32 next_id_ = 1;
};

}  // namespace hn::kernel
