#include "kernel/ipc.h"

#include <cassert>

#include "kernel/layout.h"

namespace hn::kernel {

IpcManager::~IpcManager() {
  for (auto& [id, ch] : pipes_) buddy_.free_page(ch.buf);
  for (auto& [id, sp] : sockets_) {
    buddy_.free_page(sp.dir[0].buf);
    buddy_.free_page(sp.dir[1].buf);
    buddy_.free_page(sp.skb);
  }
}

Result<u32> IpcManager::create_pipe() {
  Result<PhysAddr> page = buddy_.alloc_page();
  if (!page.ok()) return page.status();
  machine_.advance(costs_.page_alloc);
  const u32 id = next_id_++;
  pipes_[id] = Channel{page.value(), 0};
  return id;
}

void IpcManager::destroy_pipe(u32 id) {
  auto it = pipes_.find(id);
  if (it == pipes_.end()) return;
  buddy_.free_page(it->second.buf);
  pipes_.erase(it);
}

Status IpcManager::channel_write(Channel& ch, const void* data, u64 len) {
  assert(len % kWordSize == 0 && len <= kPageSize);
  if (ch.fill + len > kPageSize) return Status::OutOfRange("channel full");
  machine_.write_block_bulk(phys_to_virt(ch.buf + ch.fill), data, len);
  ch.fill += len;
  return Status::Ok();
}

Result<u64> IpcManager::channel_read(Channel& ch, void* out, u64 len) {
  assert(len % kWordSize == 0);
  const u64 take = std::min(len, ch.fill);
  if (take == 0) return u64{0};
  machine_.read_block_bulk(phys_to_virt(ch.buf), out, take);
  ch.fill -= take;  // (head index elided: single-reader ping-pong usage)
  return take;
}

Status IpcManager::pipe_write(u32 id, const void* data, u64 len) {
  auto it = pipes_.find(id);
  if (it == pipes_.end()) return Status::NotFound("no such pipe");
  machine_.advance(costs_.pipe_transfer_base);
  return channel_write(it->second, data, len);
}

Result<u64> IpcManager::pipe_read(u32 id, void* out, u64 len) {
  auto it = pipes_.find(id);
  if (it == pipes_.end()) return Status::NotFound("no such pipe");
  machine_.advance(costs_.pipe_transfer_base);
  return channel_read(it->second, out, len);
}

u64 IpcManager::pipe_fill(u32 id) const {
  auto it = pipes_.find(id);
  return it == pipes_.end() ? 0 : it->second.fill;
}

Result<u32> IpcManager::create_socket_pair() {
  SocketPair sp;
  for (Channel& ch : sp.dir) {
    Result<PhysAddr> page = buddy_.alloc_page();
    if (!page.ok()) return page.status();
    ch.buf = page.value();
  }
  Result<PhysAddr> skb = buddy_.alloc_page();
  if (!skb.ok()) return skb.status();
  sp.skb = skb.value();
  machine_.account().charge_batch(costs_.page_alloc, 3);
  const u32 id = next_id_++;
  sockets_[id] = sp;
  return id;
}

void IpcManager::destroy_socket_pair(u32 id) {
  auto it = sockets_.find(id);
  if (it == sockets_.end()) return;
  buddy_.free_page(it->second.dir[0].buf);
  buddy_.free_page(it->second.dir[1].buf);
  buddy_.free_page(it->second.skb);
  sockets_.erase(it);
}

Status IpcManager::socket_send(u32 id, unsigned end, const void* data,
                               u64 len) {
  auto it = sockets_.find(id);
  if (it == sockets_.end()) return Status::NotFound("no such socket");
  machine_.advance(costs_.socket_transfer_base);
  // sk_buff header construction: a handful of metadata stores.
  const VirtAddr skb = phys_to_virt(it->second.skb) + (end ? 256 : 0);
  machine_.write64(skb + 0, len);
  machine_.write64(skb + 8, 0x50C4E7);
  machine_.write64(skb + 16, id);
  machine_.write64(skb + 24, end);
  return channel_write(it->second.dir[end], data, len);
}

Result<u64> IpcManager::socket_recv(u32 id, unsigned end, void* out, u64 len) {
  auto it = sockets_.find(id);
  if (it == sockets_.end()) return Status::NotFound("no such socket");
  machine_.advance(costs_.socket_transfer_base);
  const VirtAddr skb = phys_to_virt(it->second.skb) + (end ? 0 : 256);
  machine_.read64(skb + 0);
  machine_.read64(skb + 8);
  return channel_read(it->second.dir[1 - end], out, len);
}

}  // namespace hn::kernel
