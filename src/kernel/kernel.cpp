#include "kernel/kernel.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/hvc_abi.h"
#include "common/log.h"
#include "common/rng.h"
#include "kernel/layout.h"
#include "sim/irq.h"
#include "sim/sysregs.h"

namespace hn::kernel {

namespace {

/// Host-side bounce buffer for the IPC copy syscalls.  Almost every fuzz
/// transfer fits the stack block, so the hot path skips the heap
/// allocation a plain std::vector<u8> would pay per call.
class IpcBuf {
 public:
  [[nodiscard]] u8* get(u64 len) {
    if (len <= sizeof(stack_)) return stack_;
    heap_.resize(len);
    return heap_.data();
  }

 private:
  u8 stack_[512];
  std::vector<u8> heap_;
};

}  // namespace

/// Charges SVC entry on construction and SVC exit on destruction —
/// the kernel boundary crossing every syscall pays.
class Kernel::SvcScope {
 public:
  explicit SvcScope(Kernel& kernel)
      : machine_(kernel.machine_),
        prof_(machine_.profiler(), obs::ProfileBucket::kSyscall) {
    machine_.advance(machine_.timing().svc_entry);
    ++machine_.counters().svc_calls;
    kernel.obs_syscalls_.add();
    // cycles() folds any pending decoupled charge; only pay for it when
    // the trace ring actually records.
    if (machine_.trace().enabled()) {
      machine_.trace().record(machine_.account().cycles(),
                              sim::TraceKind::kSvc);
    }
  }
  ~SvcScope() { machine_.advance(machine_.timing().svc_exit); }
  SvcScope(const SvcScope&) = delete;
  SvcScope& operator=(const SvcScope&) = delete;

 private:
  sim::Machine& machine_;
  obs::SelfProfiler::Scope prof_;
};

Kernel::Kernel(sim::Machine& machine, const KernelConfig& config)
    : machine_(machine), config_(config) {
  linear_limit_ =
      config.linear_limit != 0 ? config.linear_limit : machine.phys().size();
  assert(linear_limit_ > kBuddyPoolBase &&
         linear_limit_ <= machine.phys().size());
  buddy_ = std::make_unique<BuddyAllocator>(kBuddyPoolBase,
                                            linear_limit_ - kBuddyPoolBase);
  buddy_->attach_obs(machine_.obs());
  buddy_->attach_machine(machine_);
  obs_syscalls_ = machine_.obs().counter("kernel.syscalls");
  kpt_ = std::make_unique<PageTableManager>(machine_, *buddy_);
  cred_slab_ = std::make_unique<SlabCache>(machine_, *buddy_, config_.costs,
                                           ObjectKind::kCred);
  dentry_slab_ = std::make_unique<SlabCache>(machine_, *buddy_, config_.costs,
                                             ObjectKind::kDentry);
  vfs_ = std::make_unique<Vfs>(machine_, *buddy_, *dentry_slab_, config_.costs);
  procs_ = std::make_unique<ProcessManager>(machine_, *buddy_, *kpt_,
                                            *cred_slab_, config_.costs);
  ipc_ = std::make_unique<IpcManager>(machine_, *buddy_, config_.costs);
  modules_ = std::make_unique<ModuleLoader>(machine_, *buddy_, *kpt_,
                                            config_.costs);
  // Module text seals through Hypersec once hypercall mode engages;
  // until then, direct descriptor edits.
  modules_->set_sealer([this](PhysAddr base, u64 pages, bool seal) -> Status {
    if (hvc_writer_ == nullptr) {
      for (u64 p = 0; p < pages; ++p) {
        Status s = kpt_->protect_linear(
            base + p * kPageSize,
            sim::PageAttrs{.write = !seal, .exec = seal});
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    const u64 func = seal ? hvc::kModuleSeal : hvc::kModuleUnseal;
    return machine_.hvc(func, {base, pages}) == hvc::kOk
               ? Status::Ok()
               : Status::Denied("module seal hypercall denied");
  });
}

Status Kernel::boot() {
  assert(!booted_);
  Result<PhysAddr> root =
      kpt_->build_kernel_linear_map(linear_limit_, config_.use_sections);
  if (!root.ok()) return root.status();
  machine_.set_sysreg_raw(sim::SysReg::TTBR1_EL1, root.value());
  machine_.set_sysreg_raw(sim::SysReg::SCTLR_EL1, 1);  // M bit: MMU on

  // Control-flow anchor tables (CFI-monitor targets): the boot ROM placed
  // the syscall dispatch table and the exception-vector table before the
  // first instruction, so their materialization is uncharged direct
  // stores.  VBAR_EL1 is neither translation-affecting nor TVM-trapped.
  for (u64 i = 0; i < kSyscallTableEntries; ++i) {
    machine_.phys().write64(kSyscallTableBase + i * kWordSize,
                            syscall_entry_cookie(i));
  }
  for (u64 i = 0; i < kVectorTableEntries; ++i) {
    machine_.phys().write64(kVectorTableBase + i * kWordSize,
                            vector_entry_cookie(i));
  }
  machine_.set_sysreg_raw(sim::SysReg::VBAR_EL1,
                          phys_to_virt(kVectorTableBase));

  // Secondary-core bring-up (smp_init analogue): each secondary runs the
  // same uncharged boot stub — kernel translation root, MMU on, shared
  // vector table.  TTBR0 arrives with the first task scheduled there.
  for (unsigned core = 1; core < machine_.cores(); ++core) {
    machine_.set_sysreg_raw(core, sim::SysReg::TTBR1_EL1, root.value());
    machine_.set_sysreg_raw(core, sim::SysReg::SCTLR_EL1, 1);
    machine_.set_sysreg_raw(core, sim::SysReg::VBAR_EL1,
                            phys_to_virt(kVectorTableBase));
  }

  // Every core's EL1 vector dispatches into the same kernel IRQ path.
  machine_.install_el1_irq_handler([this](unsigned line) { on_irq(line); });

  // Kernel-structures arena: 160 pages of task structs, runqueues, inodes,
  // locks... touched in scattered fashion by every kernel path.
  ws_arena_pages_ = 160;
  Result<PhysAddr> arena =
      buddy_->alloc_pages(8);  // 256 pages; use the first 192
  if (!arena.ok()) return arena.status();
  ws_arena_ = arena.value();
  procs_->set_ws_toucher([this](u64 n) { touch_kernel_ws(n); });
  procs_->set_file_page_provider([this](u64 ino, u64 pgoff) {
    machine_.advance(config_.costs.page_cache_op);
    return vfs_->page_for(ino, pgoff);
  });

  Result<Task*> init = procs_->boot_init_process(config_.image);
  if (!init.ok()) return init.status();
  // Per-core timer lines, all armed from the boot clock (each core's
  // next tick then free-runs on that core's own progress).
  next_tick_at_.assign(machine_.cores(),
                       machine_.account().cycles() + config_.timer_period);
  booted_ = true;
  return Status::Ok();
}

void Kernel::use_hypercall_pt_writes() {
  hvc_writer_ = std::make_unique<HypercallPtWriter>(machine_);
  kpt_->set_writer(*hvc_writer_);
}

void Kernel::set_object_hooks(ObjectKind kind, SlabCache::ObjectHook on_alloc,
                              SlabCache::ObjectHook on_free) {
  if (kind == ObjectKind::kCred) {
    // Cred hooks sit at allocation (prepare_creds), before the identity
    // fields are filled in, so initialisation is monitored.
    cred_slab_->set_hooks(std::move(on_alloc), std::move(on_free));
    return;
  }
  // Dentry hooks sit at the d_alloc point inside the VFS (see
  // Vfs::set_dentry_hooks for the exact semantics).
  vfs_->set_dentry_hooks(std::move(on_alloc), std::move(on_free));
}

void Kernel::touch_kernel_ws(u64 words) {
  if (ws_arena_ == 0) return;
  for (u64 i = 0; i < words; ++i) {
    const u64 n = ws_cursor_++;
    const u64 page = (n * 2654435761u) % ws_arena_pages_;
    // Each arena page has one hot word (a lock / refcount / list head), so
    // the lines stay L1-resident while the *pages* overflow the TLB: the
    // cost differential between configurations is purely the translation
    // walk — 4 descriptor fetches natively, up to 24 nested under KVM.
    const u64 word = (page * 7) % (kPageSize / kWordSize);
    const VirtAddr va = phys_to_virt(ws_arena_ + page * kPageSize) +
                        word * kWordSize;
    if (n % 3 == 0) {
      machine_.write64(va, n);
    } else {
      machine_.read64(va);
    }
  }
}

void Kernel::on_irq(unsigned line) {
  machine_.advance(config_.costs.irq_handler_base);
  touch_kernel_ws(config_.costs.ws_irq);
  if (line == sim::kIrqIpi) {
    // Remote-function IPI: the useful work (TLB/cache maintenance) was
    // already applied by the sender's shootdown; the receiver pays only
    // the interrupt-path cost charged above.
    return;
  }
  if (line == sim::kIrqMbm && forward_mbm_irq_) {
    // §6.2: "we inserted a hypercall in the kernel interrupt handler to
    // allow Hypersec to handle this interrupt."
    machine_.hvc(hvc::kMbmIrq, {});
  }
}

// --- Filesystem syscalls ------------------------------------------------------

Result<StatInfo> Kernel::sys_stat(std::string_view path) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_stat);
  return vfs_->stat(path);
}

Result<u64> Kernel::sys_creat(std::string_view path) {
  SvcScope svc(*this);
  return vfs_->create_file(path);
}

Status Kernel::sys_unlink(std::string_view path) {
  SvcScope svc(*this);
  return vfs_->unlink(path);
}

Status Kernel::sys_rename(std::string_view from, std::string_view to) {
  SvcScope svc(*this);
  return vfs_->rename(from, to);
}

Status Kernel::sys_mkdir(std::string_view path) {
  SvcScope svc(*this);
  Result<u64> r = vfs_->mkdir(path);
  return r.ok() ? Status::Ok() : r.status();
}

Status Kernel::sys_write(u64 ino, u64 offset, const void* data, u64 len) {
  SvcScope svc(*this);
  return vfs_->write_file(ino, offset, data, len);
}

Status Kernel::sys_read(u64 ino, u64 offset, void* out, u64 len) {
  SvcScope svc(*this);
  return vfs_->read_file(ino, offset, out, len);
}

// --- Signals ------------------------------------------------------------------

Status Kernel::sys_sigaction(unsigned sig, u64 handler) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_sigaction);
  return procs_->sigaction(procs_->current(), sig, handler);
}

Status Kernel::sys_kill_self(unsigned sig) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_signal);
  return procs_->deliver_signal(procs_->current(), sig);
}

// --- IPC ----------------------------------------------------------------------

Result<u32> Kernel::sys_pipe() {
  SvcScope svc(*this);
  return ipc_->create_pipe();
}

Status Kernel::sys_pipe_write(u32 id, VirtAddr user_buf, u64 len) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_pipe);
  IpcBuf buf;
  u8* data = buf.get(len);
  if (Status s = procs_->touch_page(user_buf, false); !s.ok()) return s;
  machine_.read_block_bulk(user_buf, data, len, /*user=*/true);
  return ipc_->pipe_write(id, data, len);
}

Result<u64> Kernel::sys_pipe_read(u32 id, VirtAddr user_buf, u64 len) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_pipe);
  IpcBuf buf;
  u8* data = buf.get(len);
  Result<u64> got = ipc_->pipe_read(id, data, len);
  if (!got.ok()) return got;
  if (Status s = procs_->touch_page(user_buf, true); !s.ok()) return s;
  machine_.write_block_bulk(user_buf, data, got.value(), /*user=*/true);
  return got;
}

Result<u32> Kernel::sys_socketpair() {
  SvcScope svc(*this);
  return ipc_->create_socket_pair();
}

Status Kernel::sys_socket_send(u32 id, unsigned end, VirtAddr user_buf,
                               u64 len) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_socket);
  IpcBuf buf;
  u8* data = buf.get(len);
  if (Status s = procs_->touch_page(user_buf, false); !s.ok()) return s;
  machine_.read_block_bulk(user_buf, data, len, /*user=*/true);
  return ipc_->socket_send(id, end, data, len);
}

Result<u64> Kernel::sys_socket_recv(u32 id, unsigned end, VirtAddr user_buf,
                                    u64 len) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_socket);
  IpcBuf buf;
  u8* data = buf.get(len);
  Result<u64> got = ipc_->socket_recv(id, end, data, len);
  if (!got.ok()) return got;
  if (Status s = procs_->touch_page(user_buf, true); !s.ok()) return s;
  machine_.write_block_bulk(user_buf, data, got.value(), /*user=*/true);
  return got;
}

// --- Processes ----------------------------------------------------------------

Result<u32> Kernel::sys_fork() {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_fork);
  Result<Task*> child = procs_->fork(procs_->current());
  if (!child.ok()) return child.status();
  return child.value()->pid;
}

Status Kernel::sys_execve() {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_exec);
  return procs_->execve(procs_->current(), config_.image);
}

Status Kernel::sys_exit() {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_exit);
  return procs_->exit_task(procs_->current());
}

Status Kernel::sys_setuid(u64 uid) {
  SvcScope svc(*this);
  return procs_->setuid(procs_->current(), uid);
}

Result<LoadedModule> Kernel::sys_insmod(const ModuleImage& image) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_exec);
  return modules_->load(image);
}

Status Kernel::sys_rmmod(const std::string& name) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_exec / 2);
  return modules_->unload(name);
}

Result<u64> Kernel::sys_module_call(const std::string& name, u64 hook) {
  SvcScope svc(*this);
  return modules_->call_hook(name, hook);
}

Result<VirtAddr> Kernel::sys_mmap(u64 len, bool writable) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_mmap);
  return procs_->mmap(procs_->current(), len, writable);
}

Result<VirtAddr> Kernel::sys_mmap_file(u64 ino, u64 len, bool writable) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_mmap);
  return procs_->mmap_file(procs_->current(), ino, len, writable);
}

Status Kernel::sys_munmap(VirtAddr va, u64 len) {
  SvcScope svc(*this);
  touch_kernel_ws(config_.costs.ws_munmap);
  return procs_->munmap(procs_->current(), va, len);
}

// --- EL0 execution ---------------------------------------------------------------

void Kernel::run_user_compute(Cycles cycles) {
  // Ticks fire against the *active* core's timer line; on SMP each core
  // keeps its own next-tick deadline on the shared global clock.
  if (next_tick_at_.empty()) next_tick_at_.assign(machine_.cores(), 0);
  Cycles& next_tick = next_tick_at_[machine_.active_core()];
  Cycles remaining = cycles;
  while (remaining > 0) {
    const Cycles now = machine_.account().cycles();
    if (now >= next_tick) {
      ++timer_ticks_;
      next_tick = now + config_.timer_period;
      machine_.raise_irq(sim::kIrqTimer);
      continue;
    }
    const Cycles slice = std::min<Cycles>(remaining, next_tick - now);
    machine_.advance(slice);
    remaining -= slice;
  }
}

Status Kernel::run_user_memory(u64 count, u64 span_pages, u64 seed) {
  Task& task = procs_->current();
  assert(!task.vmas.empty());
  const Vma& heap = task.vmas[1];  // data segment
  const u64 pages = std::min<u64>(span_pages, (heap.end - heap.start) >> kPageShift);
  SplitMix64 rng(seed);
  for (u64 i = 0; i < count; ++i) {
    const VirtAddr va = heap.start + rng.next_below(pages) * kPageSize +
                        rng.next_below(kPageSize / kWordSize) * kWordSize;
    if (rng.chance(1, 3)) {
      if (Status s = procs_->user_write64(va, rng.next()); !s.ok()) return s;
    } else {
      Result<u64> r = procs_->user_read64(va);
      if (!r.ok()) return r.status();
    }
    // Interleave a dollop of compute so ticks fire at realistic density.
    if (i % 64 == 0) run_user_compute(64 * 40);
  }
  return Status::Ok();
}

}  // namespace hn::kernel
