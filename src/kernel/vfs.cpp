#include "kernel/vfs.h"

#include <cassert>
#include <cstring>

#include "common/rng.h"
#include "kernel/layout.h"
#include "kernel/objects.h"

namespace hn::kernel {

namespace {

/// FNV-1a over the component name (the d_name_hash word's value).
u64 name_hash(std::string_view name) {
  u64 h = 0xCBF29CE484222325ull;
  for (const char c : name) h = (h ^ static_cast<u8>(c)) * 0x100000001B3ull;
  return h;
}

/// Pack up to 16 name characters into two words (inline short name).
void pack_name(std::string_view name, u64& w0, u64& w1) {
  char buf[16] = {};
  std::memcpy(buf, name.data(), std::min<size_t>(name.size(), sizeof(buf)));
  std::memcpy(&w0, buf, 8);
  std::memcpy(&w1, buf + 8, 8);
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

}  // namespace

Vfs::Vfs(sim::Machine& machine, BuddyAllocator& buddy, SlabCache& dentry_slab,
         const KernelCosts& costs)
    : machine_(machine), buddy_(buddy), dentry_slab_(dentry_slab),
      costs_(costs) {
  lock_.bind(machine);
  Inode root;
  root.ino = kRootIno;
  root.is_dir = true;
  inodes_[kRootIno] = root;
}

Inode& Vfs::must_inode(u64 ino) {
  auto it = inodes_.find(ino);
  assert(it != inodes_.end());
  return it->second;
}

const Inode* Vfs::inode(u64 ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

void Vfs::write_dentry_word(VirtAddr dva, u64 word, u64 value) {
  [[maybe_unused]] const sim::Access64 r =
      machine_.write64(dva + word * kWordSize, value);
  assert(r.ok && "dentry slab pages must stay writable");
}

VirtAddr Vfs::instantiate_dentry(u64 parent, const std::string& name, u64 ino) {
  Result<VirtAddr> obj = dentry_slab_.alloc();
  assert(obj.ok() && "dentry slab exhausted");
  const VirtAddr dva = obj.value();
  using D = DentryLayout;
  u64 n0 = 0;
  u64 n1 = 0;
  pack_name(name, n0, n1);
  // d_alloc: the dentry identity is established...
  write_dentry_word(dva, D::kLockref, 1);
  write_dentry_word(dva, D::kParent, parent);
  write_dentry_word(dva, D::kNameHash, name_hash(name));
  write_dentry_word(dva, D::kName0, n0);
  write_dentry_word(dva, D::kName1, n1);
  write_dentry_word(dva, D::kOp, kDentryOpsVtable);
  write_dentry_word(dva, D::kSb, 0x5B);
  write_dentry_word(dva, D::kLruNext, dva ^ 0x3333);
  write_dentry_word(dva, D::kLruPrev, dva ^ 0x4444);
  // ...the monitoring hook sits here (post-d_alloc)...
  if (dentry_alloc_hook_) dentry_alloc_hook_(dva);
  // ...then d_instantiate links the inode and hashes the entry: these
  // writes land on already-monitored words.
  write_dentry_word(dva, D::kInode, ino);
  write_dentry_word(dva, D::kFlags, must_inode(ino).is_dir ? 0x10 : 0x4);
  write_dentry_word(dva, D::kHashNext, dva ^ 0x1111);
  write_dentry_word(dva, D::kHashPrev, dva ^ 0x2222);
  dcache_[DKey{parent, name}] = dva;
  dcache_lru_.push_back(DKey{parent, name});
  return dva;
}

void Vfs::dput_touch(VirtAddr dva) {
  using D = DentryLayout;
  // dget/dput pair: the lockref word is cmpxchg-cycled twice, the access
  // timestamp refreshes, and every other lookup rotates the dentry through
  // the LRU list — the hot non-sensitive churn that makes page-granularity
  // monitoring trap so often (Table 2).
  const sim::Access64 c = machine_.read64(dva + D::kLockref * kWordSize);
  assert(c.ok);
  write_dentry_word(dva, D::kLockref, c.value + 1);
  write_dentry_word(dva, D::kLockref, c.value);
  write_dentry_word(dva, D::kTime, ++lookup_serial_);
  if (lookup_serial_ % 2 == 0) {
    write_dentry_word(dva, D::kLruNext, dva ^ (lookup_serial_ << 8));
    write_dentry_word(dva, D::kLruPrev, dva ^ (lookup_serial_ << 9));
  }
}

Result<u64> Vfs::step(u64 parent, const std::string& name) {
  machine_.advance(costs_.dcache_lookup);
  const DKey key{parent, name};
  if (auto it = dcache_.find(key); it != dcache_.end()) {
    dput_touch(it->second);
    const sim::Access64 ino = machine_.read64(
        it->second + DentryLayout::kInode * kWordSize);
    assert(ino.ok);
    return ino.value;
  }
  auto child = children_.find(key);
  if (child == children_.end()) {
    return Status::NotFound("vfs: no such entry: " + name);
  }
  instantiate_dentry(parent, name, child->second);
  return child->second;
}

Result<std::pair<u64, std::string>> Vfs::resolve_parent(std::string_view path) {
  std::vector<std::string> parts = split_path(path);
  if (parts.empty()) return Status::Invalid("vfs: empty path");
  u64 cur = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Result<u64> next = step(cur, parts[i]);
    if (!next.ok()) return next.status();
    if (!must_inode(next.value()).is_dir) {
      return Status::Invalid("vfs: path component is not a directory");
    }
    cur = next.value();
  }
  return std::pair<u64, std::string>{cur, parts.back()};
}

Result<u64> Vfs::alloc_ino(bool is_dir) {
  Inode node;
  node.ino = next_ino_++;
  node.is_dir = is_dir;
  inodes_[node.ino] = node;
  return node.ino;
}

Result<u64> Vfs::create_file(std::string_view path) {
  SpinGuard ns(lock_);
  Result<std::pair<u64, std::string>> rp = resolve_parent(path);
  if (!rp.ok()) return rp.status();
  const auto& [parent, name] = rp.value();
  const DKey key{parent, name};
  if (children_.contains(key)) {
    return Status::AlreadyExists("vfs: exists: " + name);
  }
  Result<u64> ino = alloc_ino(/*is_dir=*/false);
  if (!ino.ok()) return ino;
  children_[key] = ino.value();
  instantiate_dentry(parent, name, ino.value());
  return ino;
}

Result<u64> Vfs::mkdir(std::string_view path) {
  SpinGuard ns(lock_);
  Result<std::pair<u64, std::string>> rp = resolve_parent(path);
  if (!rp.ok()) return rp.status();
  const auto& [parent, name] = rp.value();
  const DKey key{parent, name};
  if (children_.contains(key)) {
    return Status::AlreadyExists("vfs: exists: " + name);
  }
  Result<u64> ino = alloc_ino(/*is_dir=*/true);
  if (!ino.ok()) return ino;
  children_[key] = ino.value();
  instantiate_dentry(parent, name, ino.value());
  return ino;
}

void Vfs::drop_dentry(u64 parent, const std::string& name,
                      bool zap_inode_word) {
  const DKey key{parent, name};
  auto it = dcache_.find(key);
  if (it == dcache_.end()) return;
  using D = DentryLayout;
  if (zap_inode_word) {
    // d_delete: detach the inode and mark the dentry negative — sensitive-
    // word writes a file-hiding rootkit would imitate.
    write_dentry_word(it->second, D::kInode, 0);
    write_dentry_word(it->second, D::kFlags, 0x0);
  }
  write_dentry_word(it->second, D::kHashNext, 0);
  write_dentry_word(it->second, D::kHashPrev, 0);
  if (dentry_free_hook_) dentry_free_hook_(it->second);
  dentry_slab_.free(it->second);
  dcache_.erase(it);
  std::erase(dcache_lru_, key);
}

Status Vfs::unlink(std::string_view path) {
  SpinGuard ns(lock_);
  Result<std::pair<u64, std::string>> rp = resolve_parent(path);
  if (!rp.ok()) return rp.status();
  const auto& [parent, name] = rp.value();
  const DKey key{parent, name};
  auto child = children_.find(key);
  if (child == children_.end()) return Status::NotFound("vfs: no such entry");
  Inode& node = must_inode(child->second);
  drop_dentry(parent, name, /*zap_inode_word=*/true);
  if (--node.nlink == 0) {
    for (auto& [idx, frame] : node.pages) buddy_.free_page(frame);
    machine_.account().charge_batch(costs_.page_free, node.pages.size());
    inodes_.erase(node.ino);
  }
  children_.erase(child);
  return Status::Ok();
}

Status Vfs::rename(std::string_view from, std::string_view to) {
  SpinGuard ns(lock_);
  Result<std::pair<u64, std::string>> rf = resolve_parent(from);
  if (!rf.ok()) return rf.status();
  Result<std::pair<u64, std::string>> rt = resolve_parent(to);
  if (!rt.ok()) return rt.status();
  const auto& [fp, fn] = rf.value();
  const auto& [tp, tn] = rt.value();
  auto child = children_.find(DKey{fp, fn});
  if (child == children_.end()) return Status::NotFound("vfs: no such entry");
  const u64 ino = child->second;

  // Rewrite the cached dentry in place (d_move): parent and name words are
  // sensitive — exactly what a file-hiding rootkit would forge.
  if (auto it = dcache_.find(DKey{fp, fn}); it != dcache_.end()) {
    using D = DentryLayout;
    const VirtAddr dva = it->second;
    u64 n0 = 0;
    u64 n1 = 0;
    pack_name(tn, n0, n1);
    write_dentry_word(dva, D::kParent, tp);
    write_dentry_word(dva, D::kNameHash, name_hash(tn));
    write_dentry_word(dva, D::kName0, n0);
    write_dentry_word(dva, D::kName1, n1);
    write_dentry_word(dva, D::kHashNext, dva ^ 0x7777);
    dcache_.erase(it);
    std::erase(dcache_lru_, DKey{fp, fn});
    dcache_[DKey{tp, tn}] = dva;
    dcache_lru_.push_back(DKey{tp, tn});
  }
  children_.erase(child);
  children_[DKey{tp, tn}] = ino;
  return Status::Ok();
}

Result<u64> Vfs::lookup(std::string_view path) {
  SpinGuard ns(lock_);
  std::vector<std::string> parts = split_path(path);
  u64 cur = kRootIno;
  for (const std::string& part : parts) {
    Result<u64> next = step(cur, part);
    if (!next.ok()) return next.status();
    cur = next.value();
  }
  return cur;
}

Result<StatInfo> Vfs::stat(std::string_view path) {
  SpinGuard ns(lock_);
  machine_.advance(costs_.stat_base);
  Result<u64> ino = lookup(path);
  if (!ino.ok()) return ino.status();
  const Inode& node = must_inode(ino.value());
  StatInfo info;
  info.ino = node.ino;
  info.size = node.size;
  info.is_dir = node.is_dir;
  info.uid = node.uid;
  info.gid = node.gid;
  return info;
}

Result<PhysAddr> Vfs::page_for(u64 ino, u64 pgoff) {
  SpinGuard ns(lock_);
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return Status::NotFound("vfs: bad inode");
  return ensure_page(it->second, pgoff);
}

PhysAddr Vfs::ensure_page(Inode& node, u64 page_index) {
  auto it = node.pages.find(page_index);
  if (it != node.pages.end()) return it->second;
  machine_.advance(costs_.page_cache_op + costs_.page_alloc);
  Result<PhysAddr> frame = buddy_.alloc_page();
  assert(frame.ok() && "page cache allocation failed");
  machine_.phys().zero_range(frame.value(), kPageSize);
  node.pages[page_index] = frame.value();
  return frame.value();
}

Status Vfs::write_file(u64 ino, u64 offset, const void* data, u64 len) {
  SpinGuard ns(lock_);
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return Status::NotFound("vfs: bad inode");
  Inode& node = it->second;
  const auto* p = static_cast<const u8*>(data);
  u64 done = 0;
  while (done < len) {
    const u64 page_index = (offset + done) >> kPageShift;
    const u64 in_page = (offset + done) & kPageMask;
    const u64 chunk = std::min(len - done, kPageSize - in_page);
    const PhysAddr frame = ensure_page(node, page_index);
    machine_.advance(costs_.page_cache_op);
    // Page-cache stores go through the linear map (charged/bus-modelled).
    machine_.write_block_bulk(phys_to_virt(frame + in_page), p + done, chunk);
    done += chunk;
  }
  node.size = std::max(node.size, offset + len);
  node.mtime++;
  return Status::Ok();
}

Status Vfs::read_file(u64 ino, u64 offset, void* out, u64 len) {
  SpinGuard ns(lock_);
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return Status::NotFound("vfs: bad inode");
  Inode& node = it->second;
  auto* p = static_cast<u8*>(out);
  u64 done = 0;
  while (done < len) {
    const u64 page_index = (offset + done) >> kPageShift;
    const u64 in_page = (offset + done) & kPageMask;
    const u64 chunk = std::min(len - done, kPageSize - in_page);
    machine_.advance(costs_.page_cache_op);
    auto page = node.pages.find(page_index);
    if (page == node.pages.end()) {
      std::memset(p + done, 0, chunk);  // hole
    } else {
      machine_.read_block_bulk(phys_to_virt(page->second + in_page), p + done,
                               chunk);
    }
    done += chunk;
  }
  return Status::Ok();
}

Status Vfs::append_pattern(u64 ino, u64 len, u64 seed) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return Status::NotFound("vfs: bad inode");
  SplitMix64 rng(seed);
  std::vector<u8> buf(std::min<u64>(len, kPageSize));
  u64 done = 0;
  const u64 start = it->second.size;
  while (done < len) {
    const u64 chunk = std::min<u64>(len - done, buf.size());
    for (u64 i = 0; i < chunk; i += 8) {
      const u64 v = rng.next();
      std::memcpy(&buf[i], &v, std::min<u64>(8, chunk - i));
    }
    if (Status s = write_file(ino, start + done, buf.data(), chunk); !s.ok()) {
      return s;
    }
    done += chunk;
  }
  return Status::Ok();
}

void Vfs::evict_inode_pages(u64 ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return;
  machine_.account().charge_batch(costs_.page_free, it->second.pages.size());
  for (auto& [idx, frame] : it->second.pages) buddy_.free_page(frame);
  it->second.pages.clear();
}

void Vfs::prune_dcache(u64 n) {
  SpinGuard ns(lock_);
  for (u64 i = 0; i < n && !dcache_lru_.empty(); ++i) {
    const DKey key = dcache_lru_.front();
    drop_dentry(key.parent, key.name, /*zap_inode_word=*/false);
  }
}

VirtAddr Vfs::cached_dentry(u64 parent_ino, const std::string& name) const {
  auto it = dcache_.find(DKey{parent_ino, name});
  return it == dcache_.end() ? 0 : it->second;
}

}  // namespace hn::kernel
