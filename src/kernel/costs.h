// Calibrated base costs of kernel operations (cycles of CPU work beyond
// the explicitly simulated memory traffic).
//
// These stand in for all the real-kernel code we do not model instruction
// by instruction (scheduler bookkeeping, VFS locking, TCP state machine).
// They are calibrated once against the *Native* column of Table 1 and then
// held fixed across configurations: the KVM-guest and Hypernel columns
// must reproduce from mechanism alone.
#pragma once

#include "common/types.h"

namespace hn::kernel {

struct KernelCosts {
  // Table 1 rows (native targets in parentheses, microseconds).
  Cycles stat_base = 1580;              // (1.92) syscall stat
  Cycles sigaction_base = 600;          // (0.68) signal install
  Cycles signal_deliver_base = 2950;    // (2.96) signal overhead
  Cycles pipe_transfer_base = 2190;     // (10.07) per blocking pipe hop
  Cycles socket_transfer_base = 3290;   // (13.76) per blocking socket hop
  Cycles fork_base = 185000;            // (271.68) fork+exit
  Cycles exit_base = 65000;
  Cycles execve_base = 2000;            // (285.53) fork+execv
  Cycles page_fault_base = 1550;         // (1.57) anon fault service
  Cycles mmap_base = 12900;             // (24.60) mmap+touch+munmap
  Cycles munmap_base = 8000;

  // Kernel working-set touches per operation: scattered loads/stores over
  // the kernel-structures arena (task structs, runqueues, locks, inodes).
  // These are where nested paging's TLB-miss blow-up bites kernel paths —
  // the dominant, mechanism-derived share of the KVM column of Table 1.
  u64 ws_stat = 2;
  u64 ws_sigaction = 1;
  u64 ws_signal = 6;
  u64 ws_pipe = 3;
  u64 ws_socket = 6;
  u64 ws_fork = 160;
  u64 ws_exec = 64;
  u64 ws_exit = 64;
  u64 ws_fault = 4;
  u64 ws_mmap = 8;
  u64 ws_munmap = 8;
  u64 ws_switch = 3;
  u64 ws_irq = 4;

  // Shared micro-costs.
  Cycles slab_alloc = 60;
  Cycles slab_free = 40;
  Cycles page_alloc = 120;   // buddy allocation path
  Cycles page_free = 90;
  Cycles dcache_lookup = 80;      // hash + compare per component
  Cycles page_cache_op = 150;     // radix-tree insert/lookup per page
  Cycles sched_wakeup = 500;      // wake peer + runqueue
  Cycles irq_handler_base = 400;  // kernel-side IRQ prologue/epilogue
};

}  // namespace hn::kernel
