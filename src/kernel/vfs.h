// Minimal virtual filesystem: inodes, a dentry cache, and a page cache.
//
// Faithful in the dimension that matters to the evaluation: every dentry
// is a slab object in simulated memory whose fields are written through
// charged machine accesses, so path lookups, file creation, rename and
// unlink generate exactly the kernel-object write traffic the MBM counts
// in Table 2 (refcount/LRU churn on non-sensitive words; name/inode/ops
// updates on sensitive words).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/slab.h"
#include "kernel/spinlock.h"
#include "sim/machine.h"

namespace hn::kernel {

struct Inode {
  u64 ino = 0;
  bool is_dir = false;
  u64 size = 0;
  u64 nlink = 1;
  u64 uid = 0;
  u64 gid = 0;
  u64 mtime = 0;
  std::map<u64, PhysAddr> pages;  // page cache: page index -> frame
};

struct StatInfo {
  u64 ino = 0;
  u64 size = 0;
  bool is_dir = false;
  u64 uid = 0;
  u64 gid = 0;
};

/// Sentinel value stored in the d_op word of every healthy dentry; the
/// dentry-integrity security application verifies it (a rootkit that hooks
/// dentry operations overwrites this pointer).
inline constexpr u64 kDentryOpsVtable = 0xDE47'0050'0000'0001ull;

class Vfs {
 public:
  using DentryHook = std::function<void(VirtAddr dva)>;

  Vfs(sim::Machine& machine, BuddyAllocator& buddy, SlabCache& dentry_slab,
      const KernelCosts& costs);

  /// Dentry-lifetime hooks for security applications.  The alloc hook
  /// fires at the d_alloc point — after the identity fields (name, parent,
  /// d_op) are initialised but before d_instantiate links the inode — so
  /// the instantiation writes are already monitored, matching where the
  /// paper's kernel patch places its hook (§5.3 step 1).  The free hook
  /// fires after d_delete's teardown writes, before the slab free.
  void set_dentry_hooks(DentryHook on_alloc, DentryHook on_free) {
    dentry_alloc_hook_ = std::move(on_alloc);
    dentry_free_hook_ = std::move(on_free);
  }

  /// Write-back model: drop the inode's page-cache frames (memory pressure
  /// / streaming writeback).  Charged per released page.
  void evict_inode_pages(u64 ino);

  // --- Namespace operations -------------------------------------------------
  Result<u64> create_file(std::string_view path);
  Result<u64> mkdir(std::string_view path);
  Status unlink(std::string_view path);
  Status rename(std::string_view from, std::string_view to);
  Result<u64> lookup(std::string_view path);  // resolves to an inode number
  Result<StatInfo> stat(std::string_view path);

  // --- Data operations (page cache) ------------------------------------------
  Status write_file(u64 ino, u64 offset, const void* data, u64 len);
  /// Page-cache frame for page `pgoff` of `ino`, allocating (zeroed) if
  /// absent — the backing store for file mmap.
  Result<PhysAddr> page_for(u64 ino, u64 pgoff);
  Status read_file(u64 ino, u64 offset, void* out, u64 len);
  /// Convenience: append `len` bytes of a deterministic pattern.
  Status append_pattern(u64 ino, u64 len, u64 seed);

  // --- Dentry cache management ------------------------------------------------
  /// Evict up to `n` least-recently-created cached dentries (memory
  /// pressure churn; frees slab objects => unregister hooks fire).
  void prune_dcache(u64 n);
  [[nodiscard]] u64 dcache_size() const { return dcache_.size(); }
  /// Dentry VA for a cached path component, 0 when not cached (tests).
  [[nodiscard]] VirtAddr cached_dentry(u64 parent_ino,
                                       const std::string& name) const;

  [[nodiscard]] const Inode* inode(u64 ino) const;
  [[nodiscard]] u64 root_ino() const { return kRootIno; }
  [[nodiscard]] u64 inode_count() const { return inodes_.size(); }
  /// One past the highest inode number ever issued: the iteration bound
  /// for whole-filesystem walks (fingerprinting), since inode numbers are
  /// never reused.
  [[nodiscard]] u64 ino_bound() const { return next_ino_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // std::map iteration is key-ordered, so serialization is deterministic.

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(inodes_.size());
    for (const auto& [ino, node] : inodes_) {
      w.put_u64(ino);
      w.put_u64(node.ino);
      w.put_bool(node.is_dir);
      w.put_u64(node.size);
      w.put_u64(node.nlink);
      w.put_u64(node.uid);
      w.put_u64(node.gid);
      w.put_u64(node.mtime);
      w.put_u64(node.pages.size());
      for (const auto& [pgoff, frame] : node.pages) {
        w.put_u64(pgoff);
        w.put_u64(frame);
      }
    }
    w.put_u64(children_.size());
    for (const auto& [key, ino] : children_) {
      w.put_u64(key.parent);
      w.put_string(key.name);
      w.put_u64(ino);
    }
    w.put_u64(dcache_.size());
    for (const auto& [key, dva] : dcache_) {
      w.put_u64(key.parent);
      w.put_string(key.name);
      w.put_u64(dva);
    }
    w.put_u64(dcache_lru_.size());
    for (const DKey& key : dcache_lru_) {
      w.put_u64(key.parent);
      w.put_string(key.name);
    }
    w.put_u64(next_ino_);
    w.put_u64(lookup_serial_);
    lock_.save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("vfs");
    const u64 ninodes = r.get_count("inode");
    inodes_.clear();
    for (u64 i = 0; r.ok() && i < ninodes; ++i) {
      const u64 key = r.get_u64();
      Inode node;
      node.ino = r.get_u64();
      node.is_dir = r.get_bool();
      node.size = r.get_u64();
      node.nlink = r.get_u64();
      node.uid = r.get_u64();
      node.gid = r.get_u64();
      node.mtime = r.get_u64();
      const u64 npages = r.get_count("page cache");
      // Every map below was saved in ascending key order (std::map
      // iteration), so hinted inserts are amortized O(1).
      for (u64 p = 0; r.ok() && p < npages; ++p) {
        const u64 pgoff = r.get_u64();
        node.pages.emplace_hint(node.pages.end(), pgoff, r.get_u64());
      }
      inodes_.emplace_hint(inodes_.end(), key, std::move(node));
    }
    const u64 nchildren = r.get_count("directory entry");
    children_.clear();
    for (u64 i = 0; r.ok() && i < nchildren; ++i) {
      DKey key{r.get_u64(), r.get_string()};
      children_.emplace_hint(children_.end(), std::move(key), r.get_u64());
    }
    const u64 ndcache = r.get_count("dcache entry");
    dcache_.clear();
    for (u64 i = 0; r.ok() && i < ndcache; ++i) {
      DKey key{r.get_u64(), r.get_string()};
      dcache_.emplace_hint(dcache_.end(), std::move(key), r.get_u64());
    }
    const u64 nlru = r.get_count("dcache LRU entry");
    dcache_lru_.clear();
    dcache_lru_.reserve(r.ok() ? nlru : 0);
    for (u64 i = 0; r.ok() && i < nlru; ++i) {
      dcache_lru_.push_back(DKey{r.get_u64(), r.get_string()});
    }
    next_ino_ = r.get_u64();
    lookup_serial_ = r.get_u64();
    lock_.restore_state(r);
  }

 private:
  static constexpr u64 kRootIno = 1;

  struct DKey {
    u64 parent;
    std::string name;
    auto operator<=>(const DKey&) const = default;
  };

  Inode& must_inode(u64 ino);
  /// Resolve all but the last component; returns parent ino and leaf name.
  Result<std::pair<u64, std::string>> resolve_parent(std::string_view path);
  /// One component step: dcache hit (refcount churn) or miss (dentry
  /// instantiation with full field initialisation).
  Result<u64> step(u64 parent, const std::string& name);
  VirtAddr instantiate_dentry(u64 parent, const std::string& name, u64 ino);
  void write_dentry_word(VirtAddr dva, u64 word, u64 value);
  void dput_touch(VirtAddr dva);
  void drop_dentry(u64 parent, const std::string& name, bool zap_inode_word);
  Result<u64> alloc_ino(bool is_dir);
  PhysAddr ensure_page(Inode& node, u64 page_index);

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  SlabCache& dentry_slab_;
  const KernelCosts& costs_;
  std::map<u64, Inode> inodes_;
  std::map<DKey, u64> children_;       // directory entries (on-"disk" truth)
  std::map<DKey, VirtAddr> dcache_;    // cached dentry objects
  std::vector<DKey> dcache_lru_;       // creation-ordered for pruning
  u64 next_ino_ = 2;
  u64 lookup_serial_ = 0;  // drives periodic LRU-touch writes
  SpinLock lock_;          // namespace + dcache lock (dcache_lock analogue)
  DentryHook dentry_alloc_hook_;
  DentryHook dentry_free_hook_;
};

}  // namespace hn::kernel
