// Process management: tasks, per-process address spaces (real TTBR0 trees),
// fork with copy-on-write, execve, demand paging, signals, and the cred
// lifecycle.
//
// Evaluation-relevant behaviour:
//  * fork/exit drive the page-table write traffic that makes Table 1's
//    fork rows the worst case under Hypernel (one hypercall per descriptor
//    write) and under KVM (stage-2 fault churn);
//  * an address-space switch is one TTBR0_EL1 write — a TVM trap under
//    Hypernel, which is where the pipe/socket latency deltas come from;
//  * cred objects are monitored slab objects: refcount churn on fork/exit
//    (non-sensitive) vs uid/cap updates on exec/setuid (sensitive).
#pragma once

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/kpt.h"
#include "kernel/layout.h"
#include "kernel/slab.h"
#include "kernel/spinlock.h"
#include "sim/machine.h"

namespace hn::kernel {

/// Segment sizes of the synthetic process image (pages mapped eagerly at
/// process creation; LMbench's lat_proc forks a process of this size).
struct ProcImage {
  unsigned text_pages = 28;
  unsigned data_pages = 20;
  unsigned stack_pages = 10;
};

struct Vma {
  VirtAddr start = 0;
  VirtAddr end = 0;
  bool writable = false;
  bool executable = false;
  u64 file_ino = 0;   // nonzero: file-backed (page-cache frames)
  u64 file_pgoff = 0;
};

struct Task {
  u32 pid = 0;
  u16 asid = 0;
  PhysAddr ttbr0 = 0;
  PhysAddr kstack = 0;  // 4-page kernel stack (order-2 buddy block)
  std::vector<Vma> vmas;
  VirtAddr cred = 0;  // cred slab object (simulated memory)
  std::array<u64, 32> sighandlers{};
  VirtAddr signal_sp = 0;  // user stack pointer for signal frames
  VirtAddr mmap_next = kUserMmapBase;
  u8 cpu = 0;  // scheduled CPU (always 0 on single-core machines)
  bool alive = true;
};

class ProcessManager {
 public:
  ProcessManager(sim::Machine& machine, BuddyAllocator& buddy,
                 PageTableManager& kpt, SlabCache& cred_slab,
                 const KernelCosts& costs);
  ~ProcessManager();

  ProcessManager(const ProcessManager&) = delete;
  ProcessManager& operator=(const ProcessManager&) = delete;

  /// Kernel working-set toucher (installed by Kernel::boot).
  void set_ws_toucher(std::function<void(u64)> fn) {
    ws_touch_ = std::move(fn);
  }

  /// Create and switch to PID 1 with the given image, running as root.
  Result<Task*> boot_init_process(const ProcImage& image);

  Result<Task*> fork(Task& parent);
  Status execve(Task& task, const ProcImage& image);
  /// Tear down the task's address space and drop its cred reference.
  Status exit_task(Task& task);
  /// Address-space switch: runqueue cost + one TTBR0_EL1 write.  On an
  /// SMP machine the caller-side migration happens first: if the task is
  /// scheduled on another CPU, execution moves there (set_active_core)
  /// before the switch proceeds on that CPU's runqueue.
  void switch_to(Task& task);

  /// The task running on the *active* core.
  Task& current() { return *current_[machine_.active_core()]; }
  /// The task running on `core` (nullptr when its runqueue idles).
  [[nodiscard]] Task* current_on(unsigned core) const {
    return current_[core];
  }
  /// Live tasks scheduled on `core` (its runqueue length).
  [[nodiscard]] u64 runqueue_len(unsigned core) const;
  /// Least-loaded CPU by runqueue length, lowest index breaking ties —
  /// the wake_up placement policy.  Always 0 on single-core machines.
  [[nodiscard]] unsigned pick_cpu() const;
  Task* find(u32 pid);
  [[nodiscard]] u64 live_tasks() const;
  /// All live tasks (Hypersec's boot inventory of user roots).
  [[nodiscard]] std::vector<Task*> all_tasks() const;

  // --- User memory ----------------------------------------------------------
  /// Write/read with demand paging and COW handling, as the hardware +
  /// kernel fault path would resolve them.
  Status user_write64(VirtAddr va, u64 value);
  Result<u64> user_read64(VirtAddr va);
  /// Fault in the page containing `va` (for write access when `write`).
  Status touch_page(VirtAddr va, bool write);

  Result<VirtAddr> mmap(Task& task, u64 len, bool writable);
  /// Map `len` bytes of file `ino` (shared, page-cache backed).
  Result<VirtAddr> mmap_file(Task& task, u64 ino, u64 len, bool writable);
  Status munmap(Task& task, VirtAddr va, u64 len);

  /// Page-cache lookup used to service file-backed faults (installed by
  /// Kernel::boot; keeps this module independent of the VFS).
  void set_file_page_provider(
      std::function<Result<PhysAddr>(u64 ino, u64 pgoff)> fn) {
    file_pages_ = std::move(fn);
  }

  // --- Signals ---------------------------------------------------------------
  Status sigaction(Task& task, unsigned sig, u64 handler);
  /// Deliver `sig` to the task now: frame push, handler body, sigreturn.
  Status deliver_signal(Task& task, unsigned sig);

  // --- Cred ------------------------------------------------------------------
  void cred_get(VirtAddr cred);
  void cred_put(VirtAddr cred);
  /// commit_creds-style identity change: sensitive-field writes.
  Status setuid(Task& task, u64 uid);
  Result<u64> cred_uid(const Task& task);

  [[nodiscard]] u64 frame_refs(PhysAddr frame) const;

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(tasks_.size());
    for (const auto& [pid, task] : tasks_) {
      w.put_u32(pid);
      w.put_u32(task->pid);
      w.put_u16(task->asid);
      w.put_u64(task->ttbr0);
      w.put_u64(task->kstack);
      w.put_u64(task->vmas.size());
      for (const Vma& vma : task->vmas) {
        w.put_u64(vma.start);
        w.put_u64(vma.end);
        w.put_bool(vma.writable);
        w.put_bool(vma.executable);
        w.put_u64(vma.file_ino);
        w.put_u64(vma.file_pgoff);
      }
      w.put_u64(task->cred);
      for (const u64 h : task->sighandlers) w.put_u64(h);
      w.put_u64(task->signal_sp);
      w.put_u64(task->mmap_next);
      w.put_u8(task->cpu);
      w.put_bool(task->alive);
    }
    w.put_u64(frame_refs_.size());
    for (const auto& [frame, refs] : frame_refs_) {
      w.put_u64(frame);
      w.put_u32(refs);
    }
    // One current pid per CPU runqueue (0 = idle).
    for (const Task* t : current_) w.put_u32(t ? t->pid : 0);
    w.put_u32(next_pid_);
    w.put_u64(switch_serial_);
    rq_lock_.save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("process");
    const u64 ntasks = r.get_count("task");
    tasks_.clear();
    std::fill(current_.begin(), current_.end(), nullptr);
    for (u64 i = 0; r.ok() && i < ntasks; ++i) {
      const u32 key = r.get_u32();
      auto task = std::make_unique<Task>();
      task->pid = r.get_u32();
      task->asid = r.get_u16();
      task->ttbr0 = r.get_u64();
      task->kstack = r.get_u64();
      const u64 nvmas = r.get_count("vma");
      task->vmas.reserve(r.ok() ? nvmas : 0);
      for (u64 v = 0; r.ok() && v < nvmas; ++v) {
        Vma vma;
        vma.start = r.get_u64();
        vma.end = r.get_u64();
        vma.writable = r.get_bool();
        vma.executable = r.get_bool();
        vma.file_ino = r.get_u64();
        vma.file_pgoff = r.get_u64();
        task->vmas.push_back(vma);
      }
      task->cred = r.get_u64();
      for (u64& h : task->sighandlers) h = r.get_u64();
      task->signal_sp = r.get_u64();
      task->mmap_next = r.get_u64();
      task->cpu = r.get_u8();
      if (r.ok() && task->cpu >= current_.size()) {
        r.fail("task pid " + std::to_string(task->pid) + " scheduled on cpu " +
               std::to_string(task->cpu) + " beyond this machine");
        return;
      }
      task->alive = r.get_bool();
      tasks_.emplace_hint(tasks_.end(), key, std::move(task));
    }
    const u64 nframes = r.get_count("frame ref");
    frame_refs_.clear();
    // Saved in ascending key order (std::map iteration), so the hinted
    // inserts are amortized O(1) — this map is the big one on the
    // snapshot-boot restore path.
    for (u64 i = 0; r.ok() && i < nframes; ++i) {
      const PhysAddr frame = r.get_u64();
      frame_refs_.emplace_hint(frame_refs_.end(), frame, r.get_u32());
    }
    for (Task*& slot : current_) {
      const u32 pid = r.get_u32();
      slot = nullptr;
      if (!r.ok() || pid == 0) continue;
      const auto it = tasks_.find(pid);
      if (it == tasks_.end()) {
        r.fail("current task pid " + std::to_string(pid) +
               " not present in the task table");
        return;
      }
      slot = it->second.get();
    }
    next_pid_ = r.get_u32();
    switch_serial_ = r.get_u64();
    rq_lock_.restore_state(r);
  }

 private:
  Result<VirtAddr> make_cred(u64 uid, u64 gid);
  void write_cred_word(VirtAddr cred, u64 word, u64 value);
  Result<Task*> make_task();
  void touch_ws(u64 n) {
    if (ws_touch_) ws_touch_(n);
  }
  /// Eager maps every segment page (boot); lazy maps only the entry pages
  /// and lets the rest demand-fault (execve, like a real ELF loader).
  Status map_segments(Task& task, const ProcImage& image, bool eager);
  Status map_fresh_page(Task& task, VirtAddr page_va, bool writable,
                        bool executable);
  Status teardown_mm(Task& task);
  Vma* vma_of(Task& task, VirtAddr va);
  Status handle_translation_fault(Task& task, VirtAddr va, bool write);
  Status handle_cow_fault(Task& task, VirtAddr va);
  void frame_ref(PhysAddr frame);
  void frame_unref(PhysAddr frame);
  [[nodiscard]] static u64 ttbr0_value(const Task& task) {
    return task.ttbr0 | (u64{task.asid} << 48);
  }

  sim::Machine& machine_;
  BuddyAllocator& buddy_;
  PageTableManager& kpt_;
  SlabCache& cred_slab_;
  const KernelCosts& costs_;
  std::map<u32, std::unique_ptr<Task>> tasks_;
  std::map<PhysAddr, u32> frame_refs_;  // shared COW frame refcounts
  std::vector<Task*> current_;  // per-CPU running task (index = core)
  SpinLock rq_lock_;            // global runqueue lock (pre-CFS idiom)
  u32 next_pid_ = 1;
  u64 switch_serial_ = 0;
  std::function<void(u64)> ws_touch_;
  std::function<Result<PhysAddr>(u64, u64)> file_pages_;
};

}  // namespace hn::kernel
