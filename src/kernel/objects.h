// Layouts of the monitored kernel objects (§7.2): cred and dentry.
//
// Objects live in simulated memory (slab pages); every field access is a
// charged, bus-visible machine access.  Field classification drives the
// two security-solution variants of Table 2: the *sensitive* subset is
// what the word-granularity monitor watches; the page-granularity estimate
// watches every word of the object.
#pragma once

#include <array>
#include <span>

#include "common/types.h"

namespace hn::kernel {

/// Word offsets within a cred object (struct cred analogue, footnote 2:
/// "modifying the cred structure allows the attacker to elevate any
/// process to have root permission").
struct CredLayout {
  static constexpr u64 kUsage = 0;  // refcount: hot, not sensitive
  static constexpr u64 kUid = 1;
  static constexpr u64 kGid = 2;
  static constexpr u64 kSuid = 3;
  static constexpr u64 kSgid = 4;
  static constexpr u64 kEuid = 5;
  static constexpr u64 kEgid = 6;
  static constexpr u64 kFsuid = 7;
  static constexpr u64 kFsgid = 8;
  static constexpr u64 kSecurebits = 9;
  static constexpr u64 kCapInheritable = 10;
  static constexpr u64 kCapPermitted = 11;
  static constexpr u64 kCapEffective = 12;
  static constexpr u64 kRcuHead0 = 13;  // reclamation plumbing: not sensitive
  static constexpr u64 kRcuHead1 = 14;
  static constexpr u64 kPad = 15;
  static constexpr u64 kWords = 16;  // 128 bytes

  /// Words the word-granularity security solution watches.
  static constexpr std::array<u64, 12> kSensitiveWords = {
      kUid, kGid, kSuid, kSgid, kEuid, kEgid,
      kFsuid, kFsgid, kSecurebits, kCapInheritable, kCapPermitted, kCapEffective};
};

/// Word offsets within a dentry object (footnote 2: "seizing control of a
/// dentry enables the attacker to access its inode and manipulate it").
struct DentryLayout {
  static constexpr u64 kLockref = 0;  // refcount+lock: hottest word, not sensitive
  static constexpr u64 kParent = 1;   // sensitive: reparenting hides files
  static constexpr u64 kNameHash = 2;
  static constexpr u64 kName0 = 3;  // sensitive: inline name (16 chars)
  static constexpr u64 kName1 = 4;
  static constexpr u64 kInode = 5;  // sensitive: points at the inode
  static constexpr u64 kHashNext = 6;
  static constexpr u64 kHashPrev = 7;
  static constexpr u64 kLruNext = 8;
  static constexpr u64 kLruPrev = 9;
  static constexpr u64 kTime = 10;
  static constexpr u64 kFsdata = 11;
  static constexpr u64 kFlags = 12;  // sensitive: DCACHE_* control bits
  static constexpr u64 kOp = 13;     // sensitive: ops vtable, rootkit target
  static constexpr u64 kSb = 14;
  static constexpr u64 kPad = 15;
  static constexpr u64 kWords = 16;  // 128 bytes

  static constexpr std::array<u64, 6> kSensitiveWords = {
      kParent, kName0, kName1, kInode, kFlags, kOp};
};

enum class ObjectKind : u8 { kCred, kDentry };

constexpr u64 object_words(ObjectKind kind) {
  return kind == ObjectKind::kCred ? CredLayout::kWords : DentryLayout::kWords;
}

constexpr std::span<const u64> sensitive_words(ObjectKind kind) {
  if (kind == ObjectKind::kCred) {
    return std::span<const u64>(CredLayout::kSensitiveWords);
  }
  return std::span<const u64>(DentryLayout::kSensitiveWords);
}

}  // namespace hn::kernel
