// Binary buddy allocator for physical page frames.
//
// Manages the normal-DRAM pool between the kernel image and the secure
// space.  Purely host-side bookkeeping (free lists are metadata a real
// kernel would keep in struct page); the *frames it hands out* are real
// simulated memory.  Allocation cost is charged by callers as part of the
// operation that needs the page.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/spinlock.h"
#include "obs/metrics.h"
#include "sim/snapshot.h"

namespace hn::kernel {

class BuddyAllocator {
 public:
  static constexpr unsigned kMaxOrder = 10;  // up to 4 MiB blocks

  /// Manages page frames in [base, base + size); both page aligned.
  BuddyAllocator(PhysAddr base, u64 size);

  /// Allocate 2^order contiguous pages.  Returns the frame PA.
  Result<PhysAddr> alloc_pages(unsigned order);
  Result<PhysAddr> alloc_page() { return alloc_pages(0); }

  /// Free a block previously returned by alloc_pages with the same order.
  void free_pages(PhysAddr pa, unsigned order);
  void free_page(PhysAddr pa) { free_pages(pa, 0); }

  /// Observer of frees (the KVM host-pressure model watches page recycling
  /// to decide which stage-2 mappings go stale; see DESIGN.md).
  void set_free_hook(std::function<void(PhysAddr, unsigned)> hook) {
    free_hook_ = std::move(hook);
  }

  /// Register alloc/free counters with the machine's metrics registry
  /// (the allocator itself has no machine reference; the kernel wires it).
  void attach_obs(obs::Registry& obs) {
    obs_alloc_pages_ = obs.counter("kernel.alloc.pages");
    obs_free_pages_ = obs.counter("kernel.alloc.freed_pages");
  }

  /// Bind the zone lock's timing model (SMP kernels; see spinlock.h).
  void attach_machine(sim::Machine& machine) { lock_.bind(machine); }

  [[nodiscard]] u64 free_pages_count() const { return free_pages_; }
  [[nodiscard]] u64 total_pages() const { return total_pages_; }
  [[nodiscard]] PhysAddr base() const { return base_; }
  [[nodiscard]] u64 size() const { return total_pages_ * kPageSize; }
  [[nodiscard]] bool owns(PhysAddr pa) const {
    return pa >= base_ && pa < base_ + size();
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(total_pages_);
    w.put_u64(free_pages_);
    for (const std::vector<u64>& list : free_lists_) {
      w.put_u64(list.size());
      w.put_bytes(list.data(), list.size() * sizeof(u64));
    }
    w.put_bytes(block_order_.data(), block_order_.size());
    // Bit-packed allocated map: the pool is large (one bit per frame) and
    // restore is on the snapshot-boot fast path.
    std::vector<u8> bits((allocated_.size() + 7) / 8, 0);
    for (size_t i = 0; i < allocated_.size(); ++i) {
      if (allocated_[i]) bits[i >> 3] |= static_cast<u8>(1u << (i & 7));
    }
    w.put_bytes(bits.data(), bits.size());
    lock_.save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("buddy");
    const u64 pages = r.get_u64();
    if (r.ok() && pages != total_pages_) {
      r.fail("pool size " + std::to_string(pages) +
             " pages does not match this configuration");
      return;
    }
    free_pages_ = r.get_u64();
    for (std::vector<u64>& list : free_lists_) {
      const u64 n = r.get_count("free list");
      list.resize(r.ok() ? n : 0);
      r.get_bytes(list.data(), list.size() * sizeof(u64));
    }
    r.get_bytes(block_order_.data(), block_order_.size());
    std::vector<u8> bits((allocated_.size() + 7) / 8, 0);
    r.get_bytes(bits.data(), bits.size());
    for (u64 i = 0; i < allocated_.size(); ++i) {
      allocated_[i] = ((bits[i >> 3] >> (i & 7)) & 1) != 0;
    }
    lock_.restore_state(r);
  }

 private:
  [[nodiscard]] u64 frame_index(PhysAddr pa) const {
    return (pa - base_) >> kPageShift;
  }
  [[nodiscard]] PhysAddr frame_addr(u64 index) const {
    return base_ + (index << kPageShift);
  }
  /// Remove a specific free block from its order list; true if found.
  bool take_free_block(u64 index, unsigned order);

  PhysAddr base_;
  u64 total_pages_;
  u64 free_pages_ = 0;
  std::array<std::vector<u64>, kMaxOrder + 1> free_lists_;  // frame indices
  std::vector<u8> block_order_;  // allocation order per frame (head only)
  std::vector<bool> allocated_;  // per-frame allocated bit (heads)
  std::function<void(PhysAddr, unsigned)> free_hook_;
  SpinLock lock_;  // the zone lock: one per pool, as in a real buddy zone
  obs::Counter obs_alloc_pages_;
  obs::Counter obs_free_pages_;
};

}  // namespace hn::kernel
