// Loadable-module attack surface (§1's "buggy device drivers"):
//
//   1. a benign driver loads; its text seals RX through Hypersec;
//   2. a rootkit with arbitrary kernel write tries to patch the sealed
//      driver in place — the write faults (text is read-only at EL1);
//   3. it tries to remap the driver text writable via the page-table
//      interface — denied (no writable alias of sealed text);
//   4. it tries to "unseal" the kernel image as if it were a module —
//      denied outright;
//   5. it loads as a module of its own (the classic LKM rootkit) and
//      hooks a victim dentry's ops vtable at its text — the module loads
//      (kernel extensibility is preserved!) but the hooking write is a
//      monitored sensitive-word write, and the detector fires.
//
//   $ ./examples/example_rootkit_module
#include <cstdio>

#include "common/hvc_abi.h"
#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/modules.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/rootkit_detector.h"

using namespace hn;

int main() {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys = hypernel::System::create(cfg).value();
  kernel::Kernel& k = sys->kernel();
  secapps::RootkitDetector detector(*sys);
  if (!detector.install().ok()) return 1;

  // 1. A benign driver.
  kernel::ModuleImage driver;
  driver.name = "e1000";
  for (u64 i = 0; i < 32; ++i) driver.text_words.push_back(0xD21E'0000 + i);
  driver.data_words = {0, 0, 0, 0};
  auto mod = k.sys_insmod(driver);
  if (!mod.ok()) return 1;
  std::printf("driver '%s' loaded: text @%#llx (%llu page[s], sealed RX)\n",
              mod.value().name.c_str(),
              (unsigned long long)mod.value().text_va,
              (unsigned long long)mod.value().text_pages);
  std::printf("hook 3 dispatches to %#llx\n",
              (unsigned long long)k.sys_module_call("e1000", 3).value());

  // 2. Patch the sealed driver in place.
  const bool patched =
      sys->machine().write64(mod.value().text_va + 3 * 8, 0xEE71).ok;
  std::printf("\n[attack] in-place patch of driver text: %s\n",
              patched ? "SUCCEEDED (bad!)" : "faulted (text is RO)");

  // 3. Remap the driver text writable through the PT interface.
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  const bool aliased =
      root.ok() && k.kpt()
                       .map_page(root.value(), 0x400000,
                                 kernel::virt_to_phys(mod.value().text_va),
                                 sim::PageAttrs{.write = true, .user = true})
                       .ok();
  std::printf("[attack] writable alias of driver text: %s\n",
              aliased ? "SUCCEEDED (bad!)" : "denied by Hypersec");

  // 4. "Unseal" the kernel image.
  const u64 unseal =
      sys->machine().hvc(hvc::kModuleUnseal, {kernel::kTextBase, 4});
  std::printf("[attack] unseal kernel text as module: %s\n",
              unseal == hvc::kOk ? "SUCCEEDED (bad!)" : "denied by Hypersec");

  // 5. The LKM rootkit: loads legitimately, then hooks a dentry.
  if (!k.sys_creat("/etc-passwd").ok()) return 1;
  const VirtAddr victim =
      k.vfs().cached_dentry(k.vfs().root_ino(), "etc-passwd");
  kernel::ModuleImage rk;
  rk.name = "diag_helper";  // of course it has an innocuous name
  for (u64 i = 0; i < 8; ++i) rk.text_words.push_back(0x400C'0000 + i);
  auto rkmod = k.sys_insmod(rk);
  if (!rkmod.ok()) return 1;
  std::printf("\nrootkit module '%s' loaded (extensibility preserved)\n",
              rkmod.value().name.c_str());
  const size_t alerts_before = detector.alerts().size();
  sys->machine().write64(victim + kernel::DentryLayout::kOp * 8,
                         rkmod.value().text_va);  // d_op -> rootkit text
  std::printf("[attack] dentry ops hooked at module text: %s\n",
              detector.alerts().size() > alerts_before
                  ? "DETECTED by the word-granularity monitor"
                  : "missed (bad!)");
  for (size_t i = alerts_before; i < detector.alerts().size(); ++i) {
    std::printf("  ALERT: %s\n", detector.alerts()[i].reason.c_str());
  }

  const bool ok = !patched && !aliased && unseal != hvc::kOk &&
                  detector.detected_dentry_tampering();
  std::printf("\nsummary: %s\n",
              ok ? "all module-surface attacks contained"
                 : "containment FAILED");
  return ok ? 0 : 1;
}
