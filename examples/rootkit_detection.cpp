// Rootkit-detection scenario: a file-hiding rootkit and a privilege
// escalator attack the kernel; the word-granularity monitor catches both
// while staying quiet through heavy benign filesystem traffic — and the
// run shows how much interrupt noise a whole-object (page-granularity
// equivalent) monitor would have generated instead (§7.2's point).
//
//   $ ./examples/example_rootkit_detection
#include <cstdio>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"

namespace {

using namespace hn;

struct RunOutcome {
  u64 events = 0;
  u64 alerts = 0;
  double us = 0;
};

RunOutcome run_scenario(secapps::Granularity granularity) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys = hypernel::System::create(cfg).value();
  secapps::ObjectIntegrityMonitor monitor(*sys, granularity);
  if (!monitor.install().ok()) std::abort();
  kernel::Kernel& k = sys->kernel();
  const auto t0 = sys->snapshot();

  // --- Benign phase: a busy little server -------------------------------
  k.sys_mkdir("/srv");
  for (int i = 0; i < 64; ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "/srv/log.%d", i);
    Result<u64> ino = k.sys_creat(path);
    u64 row[16] = {static_cast<u64>(i)};
    k.sys_write(ino.value(), 0, row, sizeof(row));
    k.sys_stat(path);
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < 64; ++i) {
      char path[64];
      std::snprintf(path, sizeof(path), "/srv/log.%d", i);
      k.sys_stat(path);  // dcache hits: lockref/LRU churn
    }
  }

  // --- Attack 1: hide /srv/log.7 by hooking its dentry -------------------
  const VirtAddr dva = k.vfs().cached_dentry(
      k.vfs().lookup("/srv").value(), "log.7");
  sys->machine().write64(dva + kernel::DentryLayout::kOp * kWordSize,
                         0x4007'0000);  // rootkit vtable

  // --- Attack 2: escalate the web worker to root --------------------------
  k.sys_setuid(33);  // www-data
  const VirtAddr cred = k.procs().current().cred;
  sys->machine().write64(cred + kernel::CredLayout::kUid * kWordSize, 0);
  sys->machine().write64(
      cred + kernel::CredLayout::kCapEffective * kWordSize, ~u64{0});

  RunOutcome out;
  out.events = monitor.stats().events_total;
  out.alerts = monitor.alerts().size();
  out.us = sys->us_since(t0);
  if (granularity == secapps::Granularity::kSensitiveFields) {
    for (const secapps::Alert& a : monitor.alerts()) {
      std::printf("  ALERT [%s] %s\n", secapps::alert_kind_name(a.kind),
                  a.reason.c_str());
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("scenario: 64 files created, 256 cached lookups, then a\n");
  std::printf("file-hiding dentry hook and a cred escalation.\n\n");

  std::printf("word-granularity monitor (Hypernel):\n");
  const RunOutcome word = run_scenario(secapps::Granularity::kSensitiveFields);

  std::printf("\nwhole-object monitor (page-granularity equivalent):\n");
  const RunOutcome page = run_scenario(secapps::Granularity::kWholeObject);

  std::printf("\n%-34s %14s %10s %12s\n", "", "events handled", "alerts",
              "runtime(us)");
  std::printf("%-34s %14llu %10llu %12.1f\n", "word-granularity (sensitive)",
              (unsigned long long)word.events, (unsigned long long)word.alerts,
              word.us);
  std::printf("%-34s %14llu %10llu %12.1f\n", "whole-object (page-gran est.)",
              (unsigned long long)page.events, (unsigned long long)page.alerts,
              page.us);
  std::printf(
      "\nboth catch the attacks; word granularity needed %.1f%% of the "
      "monitoring interrupts (paper reports ~6.2%% across Table 2)\n",
      100.0 * word.events / page.events);
  return word.alerts >= 2 ? 0 : 1;
}
