// Head-to-head: the same kernel operations under the nested-paging
// hypervisor and under Hypernel — a quick interactive rendition of the
// Table 1 experiment with per-mechanism event counts, showing *why* the
// numbers differ (stage-2 walk nesting and VM exits vs traps and
// hypercalls).
//
//   $ ./examples/example_kvm_vs_hypernel
#include <cstdio>

#include "hypernel/system.h"
#include "workloads/lmbench.h"

using namespace hn;

int main() {
  struct Row {
    double us[3];
  };
  Row rows[9];
  sim::Counters counters[3];

  const hypernel::Mode modes[3] = {hypernel::Mode::kNative,
                                   hypernel::Mode::kKvmGuest,
                                   hypernel::Mode::kHypernel};
  for (int m = 0; m < 3; ++m) {
    hypernel::SystemConfig cfg;
    cfg.mode = modes[m];
    cfg.enable_mbm = false;
    auto sys = hypernel::System::create(cfg).value();
    workloads::LmbenchSuite suite(*sys, 32);
    const auto t0 = sys->snapshot();
    const auto results = suite.run_all();
    counters[m] = sys->counters_since(t0);
    for (int i = 0; i < 9; ++i) rows[i].us[m] = results[i].us;
  }

  std::printf("%-16s %10s %22s %22s\n", "operation", "native", "KVM-guest",
              "Hypernel");
  static const char* kNames[9] = {
      "syscall stat", "signal install", "signal ovh", "pipe lat",
      "socket lat",   "fork+exit",      "fork+execv", "page fault",
      "mmap"};
  for (int i = 0; i < 9; ++i) {
    std::printf("%-16s %9.2fus %9.2fus (%+5.1f%%) %9.2fus (%+5.1f%%)\n",
                kNames[i], rows[i].us[0], rows[i].us[1],
                100.0 * (rows[i].us[1] / rows[i].us[0] - 1.0), rows[i].us[2],
                100.0 * (rows[i].us[2] / rows[i].us[0] - 1.0));
  }

  std::printf("\nwhere the time goes (whole suite):\n");
  std::printf("%-34s %14s %14s %14s\n", "mechanism", "native", "KVM-guest",
              "Hypernel");
  auto print_row = [&](const char* label, u64 a, u64 b, u64 c) {
    std::printf("%-34s %14llu %14llu %14llu\n", label,
                (unsigned long long)a, (unsigned long long)b,
                (unsigned long long)c);
  };
  print_row("stage-1 walk descriptor fetches", counters[0].pt_descriptor_fetches,
            counters[1].pt_descriptor_fetches,
            counters[2].pt_descriptor_fetches);
  print_row("stage-2 (nested) fetches", counters[0].s2_descriptor_fetches,
            counters[1].s2_descriptor_fetches,
            counters[2].s2_descriptor_fetches);
  print_row("VM exits", counters[0].vm_exits, counters[1].vm_exits,
            counters[2].vm_exits);
  print_row("stage-2 faults", counters[0].s2_translation_faults,
            counters[1].s2_translation_faults,
            counters[2].s2_translation_faults);
  print_row("TVM sysreg traps", counters[0].sysreg_traps,
            counters[1].sysreg_traps, counters[2].sysreg_traps);
  print_row("hypercalls", counters[0].hvc_calls, counters[1].hvc_calls,
            counters[2].hvc_calls);
  std::printf(
      "\nKVM pays on every TLB miss (nested fetches) and every fault/IRQ "
      "(VM exits);\nHypernel pays only at explicit control points (traps + "
      "hypercalls) — §1's thesis.\n");
  return 0;
}
