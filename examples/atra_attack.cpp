// The address-translation redirection attack (ATRA [15], §2/§5.3) against
// two systems:
//
//   A. a bare external bus monitor (KI-Mon/Vigilare-style): the attacker
//      relocates the monitored object and patches the kernel page table;
//      the monitor keeps watching the stale physical page — bypassed;
//   B. Hypernel: the page-table edit and the translation-root swap both
//      die at Hypersec, and the object remains monitored.
//
//   $ ./examples/example_atra_attack
#include <cstdio>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/baseline_monitor.h"
#include "secapps/object_monitor.h"
#include "sim/sysregs.h"

using namespace hn;

namespace {

bool attack_baseline() {
  std::printf("--- A. bare external monitor (no Hypersec) ---\n");
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kNative;
  cfg.enable_mbm = true;  // the hardware monitor alone
  auto sys = hypernel::System::create(cfg).value();
  kernel::Kernel& k = sys->kernel();

  k.sys_creat("/etc-shadow");
  const VirtAddr victim_va =
      k.vfs().cached_dentry(k.vfs().root_ino(), "etc-shadow");
  const PhysAddr victim_pa = kernel::virt_to_phys(victim_va);

  secapps::BaselineExternalMonitor monitor(sys->machine(), *sys->mbm());
  monitor.watch_phys(victim_pa, 128);
  k.kpt().protect_linear(page_align_down(victim_pa),
                         sim::PageAttrs{.write = true,
                                        .attr = sim::MemAttr::kNonCacheable});
  std::printf("monitor watches PA %#llx (dentry of /etc-shadow)\n",
              (unsigned long long)victim_pa);

  // ATRA: copy the object, then redirect the kernel mapping to the copy.
  Result<PhysAddr> evil = k.buddy().alloc_page();
  u8 buf[kPageSize];
  sys->machine().phys().read_block(page_align_down(victim_pa), buf, kPageSize);
  sys->machine().phys().write_block(evil.value(), buf, kPageSize);
  const Status redirect = k.kpt().map_page(
      k.kpt().kernel_root(), page_align_down(victim_va), evil.value(),
      sim::PageAttrs{.write = true});
  std::printf("page-table redirect: %s\n",
              redirect.ok() ? "SUCCEEDED (nothing checked it)" : "blocked");

  // Tamper through the same kernel VA: lands on the unwatched copy.
  sys->machine().write64(victim_va + kernel::DentryLayout::kOp * kWordSize,
                         0xBADBAD);
  monitor.poll();
  const bool seen =
      monitor.saw_write_to(victim_pa + kernel::DentryLayout::kOp * kWordSize);
  std::printf("monitor saw the tampering: %s\n", seen ? "yes" : "NO — bypassed");
  return !seen;
}

bool attack_hypernel() {
  std::printf("\n--- B. Hypernel ---\n");
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys = hypernel::System::create(cfg).value();
  kernel::Kernel& k = sys->kernel();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  monitor.install();

  k.sys_creat("/etc-shadow");
  const VirtAddr victim_va =
      k.vfs().cached_dentry(k.vfs().root_ino(), "etc-shadow");

  // Step 1 of ATRA: the page-table edit is a hypercall now, and Hypersec
  // seals the kernel linear map.
  Result<PhysAddr> evil = k.buddy().alloc_page();
  const Status redirect = k.kpt().map_page(
      k.kpt().kernel_root(), page_align_down(victim_va), evil.value(),
      sim::PageAttrs{.write = true});
  std::printf("page-table redirect: %s\n",
              redirect.ok() ? "SUCCEEDED" : "denied by Hypersec");

  // Fallback: install a whole forged translation root.  HCR_EL2.TVM traps
  // the TTBR write and Hypersec rejects the unregistered root.
  const bool ttbr =
      sys->machine().write_sysreg_el1(sim::SysReg::TTBR1_EL1, evil.value());
  std::printf("forged TTBR1 install: %s\n",
              ttbr ? "SUCCEEDED" : "denied by Hypersec (TVM trap)");

  // The object is still where the monitor thinks it is; tampering fires.
  sys->machine().write64(victim_va + kernel::DentryLayout::kOp * kWordSize,
                         0xBADBAD);
  const bool detected = !monitor.alerts().empty();
  std::printf("tampering detected: %s\n", detected ? "yes" : "no");
  std::printf("hypersec denials: %llu PT, %llu trap\n",
              (unsigned long long)
                  sys->hypersec()->verifier().stats().denied_total(),
              (unsigned long long)sys->hypersec()->stats().trap_denials);
  return !redirect.ok() && !ttbr && detected;
}

}  // namespace

int main() {
  const bool baseline_bypassed = attack_baseline();
  const bool hypernel_held = attack_hypernel();
  std::printf("\nsummary: bare external monitor %s; Hypernel %s\n",
              baseline_bypassed ? "BYPASSED by ATRA" : "held (unexpected)",
              hypernel_held ? "blocked the attack" : "failed (unexpected)");
  return (baseline_bypassed && hypernel_held) ? 0 : 1;
}
