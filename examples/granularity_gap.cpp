// The protection granularity gap, measured three ways (§1, §5.3, §7.2):
//
//   1. KVM stage-2 write-protection of a page holding 32 slab objects:
//      every write to ANY of them traps, even with one object monitored;
//   2. Hypernel whole-object monitoring (the paper's page-granularity
//      estimate): all words of the monitored objects raise events;
//   3. Hypernel word-granularity monitoring: only sensitive words do.
//
//   $ ./examples/example_granularity_gap
#include <cstdio>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"

using namespace hn;

namespace {

/// The benign workload: path lookups churning dentry refcounts.
void churn(kernel::Kernel& k, int files, int passes) {
  k.sys_mkdir("/pool");
  for (int i = 0; i < files; ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "/pool/f%d", i);
    k.sys_creat(path);
  }
  for (int p = 0; p < passes; ++p) {
    for (int i = 0; i < files; ++i) {
      char path[64];
      std::snprintf(path, sizeof(path), "/pool/f%d", i);
      k.sys_stat(path);
    }
  }
}

u64 kvm_page_protection() {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kKvmGuest;
  auto sys = hypernel::System::create(cfg).value();
  kernel::Kernel& k = sys->kernel();

  // One interesting dentry... but stage-2 protection covers its whole slab
  // page — and 31 uninvolved neighbours with it.
  k.sys_creat("/kvm-victim");
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "kvm-victim");
  sys->kvm()->set_wp_handler([](PhysAddr, u64) {});
  sys->kvm()->protect_page(kernel::virt_to_phys(dva));

  churn(k, 30, 8);
  return sys->kvm()->stats().wp_traps;
}

u64 hypernel_monitor(secapps::Granularity granularity) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys = hypernel::System::create(cfg).value();
  secapps::ObjectIntegrityMonitor monitor(*sys, granularity,
                                          /*watch_cred=*/false,
                                          /*watch_dentry=*/true);
  monitor.install();
  kernel::Kernel& k = sys->kernel();
  k.sys_creat("/kvm-victim");  // parity with the KVM run
  churn(k, 30, 8);
  return sys->mbm()->stats().detections;
}

}  // namespace

int main() {
  std::printf("benign workload: 31 files created, 240 cached lookups\n\n");
  const u64 kvm_traps = kvm_page_protection();
  const u64 whole = hypernel_monitor(secapps::Granularity::kWholeObject);
  const u64 word = hypernel_monitor(secapps::Granularity::kSensitiveFields);

  std::printf("%-54s %10s\n", "scheme", "traps");
  std::printf("%-54s %10llu\n",
              "KVM stage-2 page protection (1 object watched)",
              (unsigned long long)kvm_traps);
  std::printf("%-54s %10llu\n",
              "Hypernel whole-object monitoring (all dentries)",
              (unsigned long long)whole);
  std::printf("%-54s %10llu\n",
              "Hypernel word-granularity (sensitive fields only)",
              (unsigned long long)word);
  std::printf("\nword granularity: %.1f%% of the whole-object traps "
              "(Table 2 reports 3.6-9.2%% per benchmark)\n",
              whole ? 100.0 * word / whole : 0.0);
  return (word < whole && kvm_traps > 0) ? 0 : 1;
}
