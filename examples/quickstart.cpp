// Quickstart: boot a Hypernel-protected system, install a rootkit
// detector, and watch it catch a direct cred overwrite that classic
// page-granularity systems would bury under refcount noise.
//
//   $ ./examples/example_quickstart
#include <cstdio>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "secapps/rootkit_detector.h"

int main() {
  using namespace hn;

  // 1. Build the full stack: simulated AArch64 machine, simkernel,
  //    Hypersec at EL2, and the memory bus monitor.
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys_r = hypernel::System::create(cfg);
  if (!sys_r.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", sys_r.status().message().c_str());
    return 1;
  }
  auto sys = std::move(sys_r).value();
  std::printf("booted: %s mode, %llu MiB DRAM, secure space @%llu MiB\n",
              hypernel::mode_name(sys->mode()),
              (unsigned long long)(sys->machine().phys().size() >> 20),
              (unsigned long long)(sys->machine().secure_base() >> 20));

  // 2. Install the rootkit detector: it hooks cred/dentry lifetimes and
  //    registers their sensitive words with the MBM (word granularity).
  secapps::RootkitDetector detector(*sys);
  if (!detector.install().ok()) {
    std::fprintf(stderr, "detector install failed\n");
    return 1;
  }
  std::printf("rootkit detector installed (SID %llu)\n",
              (unsigned long long)detector.sid());

  // 3. Normal workload: the kernel does real work; the detector stays
  //    quiet because benign operations never forge sensitive fields.
  kernel::Kernel& k = sys->kernel();
  k.sys_mkdir("/home");
  k.sys_creat("/home/notes.txt");
  k.sys_stat("/home/notes.txt");
  k.sys_setuid(1000);  // drop privileges, legitimately
  std::printf("after normal activity: %llu events verified, %zu alerts\n",
              (unsigned long long)detector.stats().events_total,
              detector.alerts().size());

  // 4. The attack: a compromised driver writes euid=0 straight into the
  //    current cred object (the paper's footnote-2 scenario).
  const VirtAddr cred = k.procs().current().cred;
  sys->machine().write64(cred + kernel::CredLayout::kEuid * kWordSize, 0);

  // 5. The MBM snooped the bus write, Hypersec dispatched it, and the
  //    detector's integrity policy flagged it — synchronously.
  if (detector.detected_cred_escalation()) {
    const secapps::Alert& a = detector.alerts().back();
    std::printf("ALERT: %s (word %llu: %llx -> %llx)\n", a.reason.c_str(),
                (unsigned long long)a.word_offset,
                (unsigned long long)a.old_value,
                (unsigned long long)a.new_value);
  } else {
    std::printf("BUG: escalation went undetected\n");
    return 1;
  }

  std::printf("\npipeline stats: %llu bus writes snooped, %llu detections, "
              "%llu IRQs, %llu dispatched to apps\n",
              (unsigned long long)sys->mbm()->stats().snooped_word_writes,
              (unsigned long long)sys->mbm()->stats().detections,
              (unsigned long long)sys->mbm()->stats().irqs_raised,
              (unsigned long long)sys->hypersec()->stats().events_dispatched);
  std::printf("simulated time: %.1f us\n", sys->machine().elapsed_us());
  return 0;
}
